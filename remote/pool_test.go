package remote

// Regression tests for the buffer-ownership rules of the pooled frame path
// (docs/adr/0007): whatever a decoder hands across the API boundary must be
// an owned copy that survives the frame buffer's reuse and recycling, the
// client's write coalescer must deliver an intact frame stream in fewer
// socket writes than frames, and the server's reply group-commit must be
// observable through WriterStats.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"recmem"
	"recmem/internal/core"
	"recmem/internal/tag"
)

// TestDecodedRequestSurvivesBufferReuse decodes a request out of a buffer
// that is then clobbered — the server read loop's reuse pattern — and checks
// every decoded field still holds.
func TestDecodedRequestSurvivesBufferReuse(t *testing.T) {
	body, err := encodeRequest(request{Kind: reqWrite, ID: 42, Reg: "reg-a", Value: []byte("payload-1")})
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]string)
	req, err := decodeRequestReuse(body, names)
	if err != nil {
		t.Fatal(err)
	}
	for i := range body {
		body[i] = 0xAA
	}
	if req.Reg != "reg-a" || !bytes.Equal(req.Value, []byte("payload-1")) {
		t.Fatalf("decoded request aliases the reused buffer: reg %q value %q", req.Reg, req.Value)
	}
	// The intern table must keep handing out the same owned string, not a
	// view of a dead buffer.
	body2, err := encodeRequest(request{Kind: reqRead, ID: 43, Reg: "reg-a"})
	if err != nil {
		t.Fatal(err)
	}
	req2, err := decodeRequestReuse(body2, names)
	if err != nil {
		t.Fatal(err)
	}
	if req2.Reg != "reg-a" {
		t.Fatalf("interned name corrupted: %q", req2.Reg)
	}
}

// TestDecodedReadValueSurvivesFrameRecycling is the ownership regression the
// pooled path hangs on: a read reply's value decoded from a pooled frame
// buffer must stay intact after the buffer goes back to the pool, is handed
// out again, and is overwritten by the next frame.
func TestDecodedReadValueSurvivesFrameRecycling(t *testing.T) {
	want := bytes.Repeat([]byte("value-A!"), 8)
	f := getFrame()
	frame, err := appendResponseFrame(f.b[:0], response{Kind: reqRead, ID: 1, Op: 1,
		Present: true, Value: want, Tag: tag.Tag{Seq: 1, Writer: 0, Rec: 1}, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.b = frame
	resp, err := decodeResponse(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	putFrame(f)

	// Recycle the buffer and clobber its whole capacity, as the next frame
	// built in it would.
	g := getFrame()
	clobber := g.b[:cap(g.b)]
	for i := range clobber {
		clobber[i] = 0xFF
	}
	g.b = clobber
	putFrame(g)

	if !bytes.Equal(resp.Value, want) {
		t.Fatalf("decoded read value aliases the recycled frame buffer: %q", resp.Value)
	}

	// Same property through readFrameReuse: the second frame overwrites the
	// shared read buffer; the first frame's decoded value must not notice.
	var stream bytes.Buffer
	first, err := appendResponseFrame(nil, response{Kind: reqRead, ID: 2, Op: 2,
		Present: true, Value: want, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	second, err := appendResponseFrame(nil, response{Kind: reqRead, ID: 3, Op: 3,
		Present: true, Value: bytes.Repeat([]byte{0xEE}, len(want)+16), Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream.Write(first)
	stream.Write(second)
	buf := make([]byte, 0, 16)
	body, buf, err := readFrameReuse(&stream, buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrameReuse(&stream, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Value, want) {
		t.Fatalf("decoded read value aliases the reused read buffer: %q", got.Value)
	}
}

// gateConn is a net.Conn whose Write blocks on a gate, so a test can hold
// the coalescer's leader mid-write while followers queue frames behind it.
type gateConn struct {
	entered chan struct{} // signaled when a Write starts
	release chan struct{} // each Write waits for one token
	mu      sync.Mutex
	buf     bytes.Buffer
	writes  int
}

func (c *gateConn) Write(p []byte) (int, error) {
	c.entered <- struct{}{}
	<-c.release
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes++
	return c.buf.Write(p)
}

func (c *gateConn) Read([]byte) (int, error)         { return 0, net.ErrClosed }
func (c *gateConn) Close() error                     { return nil }
func (c *gateConn) LocalAddr() net.Addr              { return nil }
func (c *gateConn) RemoteAddr() net.Addr             { return nil }
func (c *gateConn) SetDeadline(time.Time) error      { return nil }
func (c *gateConn) SetReadDeadline(time.Time) error  { return nil }
func (c *gateConn) SetWriteDeadline(time.Time) error { return nil }

// TestConnWriterCoalesces pins the leader/follower contract: frames queued
// while the leader's write is on the wire ride the next sweep as ONE socket
// write, and the byte stream stays an intact, ordered frame sequence.
func TestConnWriterCoalesces(t *testing.T) {
	conn := &gateConn{entered: make(chan struct{}), release: make(chan struct{})}
	w := newConnWriter(conn)

	mkframe := func(id uint64) []byte {
		frame, err := appendRequestFrame(nil, request{Kind: reqWrite, ID: id, Reg: "r", Value: []byte("v")})
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}

	errc := make(chan error, 1)
	go func() { errc <- w.write(mkframe(1)) }()
	<-conn.entered // the leader is mid-write with frame 1

	// Followers: both return immediately, leaving their frames queued.
	if err := w.write(mkframe(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.write(mkframe(3)); err != nil {
		t.Fatal(err)
	}

	conn.release <- struct{}{} // finish frame 1; the leader sweeps 2+3
	<-conn.entered             // the leader is mid-write with the burst
	conn.release <- struct{}{}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	conn.mu.Lock()
	writes, stream := conn.writes, conn.buf.Bytes()
	conn.mu.Unlock()
	if writes != 2 {
		t.Fatalf("3 frames took %d socket writes, want 2 (frame 1, then the 2+3 burst)", writes)
	}
	r := bytes.NewReader(stream)
	for want := uint64(1); want <= 3; want++ {
		body, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", want, err)
		}
		req, err := decodeRequest(body)
		if err != nil {
			t.Fatalf("frame %d: %v", want, err)
		}
		if req.ID != want {
			t.Fatalf("frame order broken: got id %d, want %d", req.ID, want)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes after the last frame", r.Len())
	}
}

// TestServerReplyGroupCommit pins the acceptance-bar observable
// deterministically: queue a pile of responses BEFORE the writer wakes, and
// the whole pile must leave in ONE gathered socket write, counted as one
// burst carrying that many frames (WriterStats).
func TestServerReplyGroupCommit(t *testing.T) {
	s := &Server{}
	conn := &gateConn{entered: make(chan struct{}), release: make(chan struct{})}
	c := &srvConn{s: s, conn: conn, wake: make(chan struct{}, 1)}
	const queued = 5
	for i := 1; i <= queued; i++ {
		c.reply(response{Kind: reqPing, ID: uint64(i)})
	}
	connDone := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writeLoop(connDone)
	}()
	<-conn.entered // the writer is mid-write with its first burst
	conn.release <- struct{}{}
	close(connDone)
	<-writerDone

	bursts, frames := s.WriterStats()
	if bursts != 1 || frames != queued {
		t.Fatalf("WriterStats = %d bursts, %d frames; want 1 burst carrying %d frames", bursts, frames, queued)
	}
	conn.mu.Lock()
	writes, stream := conn.writes, conn.buf.Bytes()
	conn.mu.Unlock()
	if writes != 1 {
		t.Fatalf("%d queued replies took %d socket writes, want 1", queued, writes)
	}
	r := bytes.NewReader(stream)
	for want := uint64(1); want <= queued; want++ {
		body, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", want, err)
		}
		got, err := decodeResponse(body)
		if err != nil {
			t.Fatalf("frame %d: %v", want, err)
		}
		if got.ID != want || got.Kind != reqPing {
			t.Fatalf("frame order broken: got %v id %d, want PING id %d", got.Kind, got.ID, want)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes after the last frame", r.Len())
	}
}

// TestWriterStatsUnderLoad sanity-checks the counters end to end: after a
// pipelined run every reply frame is accounted for and the invariant
// frames ≥ bursts holds (whether a given burst coalesced is scheduler
// timing; the deterministic proof is TestServerReplyGroupCommit).
func TestWriterStatsUnderLoad(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	c := mesh.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	regs := make([]*recmem.Register, 4)
	for i := range regs {
		regs[i] = c.Register(fmt.Sprintf("gc%d", i))
	}
	val := bytes.Repeat([]byte("x"), 64)
	const ops = 256
	futs := make([]*recmem.WriteFuture, 0, ops)
	for i := 0; i < ops; i++ {
		f, err := regs[i%len(regs)].SubmitWrite(val)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		if err := f.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	bursts, frames := mesh.servers[0].WriterStats()
	// ops replies plus the dial handshake; redials could add more, never
	// fewer. frames ≥ bursts ≥ 1 is the structural invariant.
	if frames < ops+1 {
		t.Fatalf("writer carried %d frames, want at least %d", frames, ops+1)
	}
	if bursts == 0 || frames < bursts {
		t.Fatalf("inconsistent writer stats: bursts %d, frames %d", bursts, frames)
	}
}
