package remote

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"recmem"
	"recmem/internal/core"
)

// fastRedial is the reconnect tuning the tests use: tight backoff so a
// restart round-trips in milliseconds.
func fastRedial() Options {
	return Options{RedialMin: 2 * time.Millisecond, RedialMax: 20 * time.Millisecond}
}

// dialOpts connects a client to node i's control port with explicit options.
func (m *testMesh) dialOpts(t *testing.T, i int, opts Options) *Client {
	t.Helper()
	c, err := Dial(m.controlAddr(i), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// restartServer re-listens on server i's old address and serves the same
// node — the in-process stand-in for a node process coming back after a
// kill. Binding a just-freed port can race the OS; retry briefly.
func (m *testMesh) restartServer(t *testing.T, i int) {
	t.Helper()
	addr := m.servers[i].Addr()
	m.servers[i].Close()
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv := Serve(ln, m.nodes[i], ServerOptions{OpTimeout: 30 * time.Second})
	t.Cleanup(func() { srv.Close() })
	m.servers[i] = srv
}

// writeWhenBack retries a synchronous write while the client reports the
// connection down (ErrDown) or cut (ErrCrashed), proving the SAME handle
// succeeds after the redial without the caller re-dialing.
func writeWhenBack(ctx context.Context, t *testing.T, reg *recmem.Register, val string) {
	t.Helper()
	for {
		err := reg.Write(ctx, []byte(val))
		if err == nil {
			return
		}
		if !errors.Is(err, recmem.ErrDown) && !errors.Is(err, recmem.ErrCrashed) {
			t.Fatalf("write waiting for reconnect: %v", err)
		}
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
			t.Fatalf("reconnect never happened: %v", ctx.Err())
		}
	}
}

// TestReconnectAfterServerRestart is the conformance case for the reconnect
// layer: a server restart mid-stream resolves the pending operations with
// ErrCrashed (unknown fate), new operations fail fast with ErrDown during
// the outage, and once the server is back the background redialer — not the
// caller — re-establishes the connection and fresh operations on the same
// handles succeed. OnStateChange observes the transitions.
func TestReconnectAfterServerRestart(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	ctx := testCtx(t)

	var stMu sync.Mutex
	var states []ConnState
	opts := fastRedial()
	opts.OnStateChange = func(s ConnState, cause error) {
		stMu.Lock()
		states = append(states, s)
		stMu.Unlock()
	}
	c := mesh.dialOpts(t, 0, opts)
	x := c.Register("x")
	if err := x.Write(ctx, []byte("before")); err != nil {
		t.Fatal(err)
	}

	// Stall the mesh so submitted writes hang in flight, then cut the
	// connection under them.
	mesh.nodes[1].Crash(nil)
	mesh.nodes[2].Crash(nil)
	var futs []*recmem.WriteFuture
	for i := 0; i < 4; i++ {
		f, err := x.SubmitWrite([]byte("mid-stream"))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	mesh.restartServer(t, 0)
	for i, f := range futs {
		if err := f.Wait(ctx); !errors.Is(err, recmem.ErrCrashed) {
			t.Fatalf("pending write %d across restart: %v (want ErrCrashed)", i, err)
		}
	}

	// Restore the quorum; the redialer brings the same client back.
	if err := mesh.nodes[1].Recover(ctx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := mesh.nodes[2].Recover(ctx, nil, nil); err != nil {
		t.Fatal(err)
	}
	writeWhenBack(ctx, t, x, "after-restart")
	got, err := c.Register("x").Read(ctx)
	if err != nil || string(got) != "after-restart" {
		t.Fatalf("read after reconnect = %q, %v", got, err)
	}

	stMu.Lock()
	defer stMu.Unlock()
	if len(states) < 2 || states[0] != StateReconnecting {
		t.Fatalf("state transitions = %v, want [reconnecting connected ...]", states)
	}
	for _, s := range states[1:] {
		if s == StateConnected {
			return
		}
	}
	t.Fatalf("no connected transition observed: %v", states)
}

// TestRedialGivesUp: with a bounded attempt budget and the server gone for
// good, the redialer surfaces a terminal error wrapping ErrRedialExhausted,
// and every later operation returns it.
func TestRedialGivesUp(t *testing.T) {
	mesh := startMesh(t, 1, core.Persistent)
	opts := fastRedial()
	opts.RedialAttempts = 3
	var terminal flagBool
	opts.OnStateChange = func(s ConnState, cause error) {
		if s == StateTerminal {
			terminal.set()
		}
	}
	c := mesh.dialOpts(t, 0, opts)
	ctx := testCtx(t)
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	mesh.servers[0].Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		err := c.Ping(ctx)
		if errors.Is(err, ErrRedialExhausted) {
			break
		}
		if err == nil || (!errors.Is(err, recmem.ErrDown) && !errors.Is(err, recmem.ErrCrashed)) {
			t.Fatalf("ping while giving up = %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("redialer never gave up")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !terminal.get() {
		t.Fatal("OnStateChange never reported StateTerminal")
	}
	// A terminal client still closes cleanly (and idempotently).
	if err := c.Close(); err != nil {
		t.Fatalf("close of a terminal client: %v", err)
	}
}

// flagBool is a tiny mutex-guarded bool for callback assertions.
type flagBool struct {
	mu sync.Mutex
	v  bool
}

func (b *flagBool) set() { b.mu.Lock(); b.v = true; b.mu.Unlock() }
func (b *flagBool) get() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}

// TestCloseIdempotent is the regression for the double-close bug: a second
// Close — or a Close after the read loop already tore the socket down —
// returns nil, not a spurious "use of closed network connection".
func TestCloseIdempotent(t *testing.T) {
	mesh := startMesh(t, 1, core.Persistent)
	c, err := Dial(mesh.controlAddr(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	// Close after the server side already killed the socket (the read loop
	// saw the failure first).
	c2, err := Dial(mesh.controlAddr(0), fastRedial())
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	if err := c2.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	mesh.servers[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c2.Ping(ctx); err != nil {
			break // read loop has processed the failure
		}
		if time.Now().After(deadline) {
			t.Fatal("connection never failed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("close after connection death: %v", err)
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("re-close after connection death: %v", err)
	}
}

// TestRecordingVerifySpansReconnect: a recorded history that spans a real
// connection cut and redial still merges and passes the atomicity checker —
// the lost-connection operations land on pending virtual clients (unknown
// fate), the outage-time rejections are erased, and the post-reconnect
// operations verify against the pre-cut ones.
func TestRecordingVerifySpansReconnect(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	ctx := testCtx(t)
	group := recmem.NewRecordingGroup()
	clients := make([]recmem.Client, 3)
	for i := 0; i < 3; i++ {
		clients[i] = group.Wrap(mesh.dialOpts(t, i, fastRedial()))
	}

	x := clients[0].Register("x")
	if err := x.Write(ctx, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got, err := clients[1].Register("x").Read(ctx); err != nil || string(got) != "v1" {
		t.Fatalf("read = %q, %v", got, err)
	}

	// Stall the quorum through the recorded clients (the crashes land in
	// the history), leave writes hanging, and cut client 0's connection.
	if err := clients[1].Crash(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clients[2].Crash(ctx); err != nil {
		t.Fatal(err)
	}
	var futs []*recmem.WriteFuture
	for i := 0; i < 3; i++ {
		f, err := x.SubmitWrite([]byte("unknown-fate"))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	mesh.servers[0].Close() // the node process "dies"; nothing is listening
	for _, f := range futs {
		if err := f.Wait(ctx); !errors.Is(err, recmem.ErrCrashed) {
			t.Fatalf("pending write across restart: %v", err)
		}
	}
	// An outage-time invocation is rejected (and erased from the history):
	// with nothing listening, the redialer cannot reconnect yet.
	if err := x.Write(ctx, []byte("rejected")); !errors.Is(err, recmem.ErrDown) && !errors.Is(err, recmem.ErrCrashed) {
		t.Fatalf("write during outage: %v", err)
	}

	mesh.restartServer(t, 0)
	if err := clients[1].Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clients[2].Recover(ctx); err != nil {
		t.Fatal(err)
	}
	writeWhenBack(ctx, t, x, "v2")
	for i, c := range clients {
		got, err := c.Register("x").Read(ctx)
		if err != nil || string(got) != "v2" {
			t.Fatalf("client %d read after reconnect = %q, %v", i, got, err)
		}
	}

	merged, err := group.Merged()
	if err != nil {
		t.Fatalf("merge across reconnect: %v", err)
	}
	if len(merged) == 0 {
		t.Fatal("empty merged history")
	}
	if err := recmem.VerifyHistory(merged, recmem.PersistentAtomicity); err != nil {
		t.Fatalf("verify across reconnect: %v", err)
	}
}
