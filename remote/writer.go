package remote

import (
	"net"
	"sync"
)

// connWriter coalesces concurrent frame writes on one client connection in
// the leader/follower style of a WAL group commit: every sender appends its
// already-prefixed frame to a shared pending buffer under the mutex; the
// first sender to find no write in flight becomes the leader and flushes —
// repeatedly swapping the pending buffer for a spare and writing the whole
// batch in one system call — until nothing is queued. Under pipelined load,
// frames queued while the leader's Write is on the wire ride the next swap,
// so the syscall count is one per burst, not one per operation, and no
// follower ever blocks on the socket.
type connWriter struct {
	conn net.Conn

	mu      sync.Mutex
	pend    []byte // frames queued for the next flush
	spare   []byte // recycled flush buffer, swapped with pend by the leader
	writing bool   // a leader goroutine owns the socket
	err     error  // first write error; sticky
}

func newConnWriter(conn net.Conn) *connWriter {
	return &connWriter{
		conn:  conn,
		pend:  make([]byte, 0, 4096),
		spare: make([]byte, 0, 4096),
	}
}

// write queues frame (copying it, so the caller's buffer is free to recycle
// on return) and flushes as the leader if no flush is in flight. A non-nil
// error is the connection's sticky write error; a follower whose frame is
// lost to a later leader's failure returns nil — the failure still tears the
// connection down, resolving that frame's call through connFailed like any
// other operation cut off mid-flight.
func (w *connWriter) write(frame []byte) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.pend = append(w.pend, frame...)
	if w.writing {
		w.mu.Unlock() // the leader's next sweep carries this frame
		return nil
	}
	w.writing = true
	for w.err == nil && len(w.pend) > 0 {
		out := w.pend
		w.pend, w.spare = w.spare[:0], nil
		w.mu.Unlock()
		_, err := w.conn.Write(out)
		w.mu.Lock()
		if err != nil && w.err == nil {
			w.err = err
		}
		if cap(out) <= maxPooledFrame {
			w.spare = out[:0]
		} else {
			w.spare = make([]byte, 0, 4096) // oversized burst: let the allocator reclaim it
		}
	}
	w.writing = false
	err := w.err
	w.mu.Unlock()
	return err
}
