package remote

// Fuzzers for the frame reader and both body decoders: arbitrary bytes must
// never panic them, the pooled/reusing variants must agree byte-for-byte
// with their allocating originals, and anything that decodes must survive a
// re-encode/decode round trip unchanged — the property that keeps the
// append-style encoders and the copy-out decoders honest with each other.

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"recmem/internal/tag"
)

// frameOf wraps r's encoded body as one length-prefixed frame.
func frameOf(tb testing.TB, r request) []byte {
	tb.Helper()
	body, err := encodeRequest(r)
	if err != nil {
		tb.Fatal(err)
	}
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	return append(frame, body...)
}

func FuzzReadFrame(f *testing.F) {
	f.Add(frameOf(f, request{Kind: reqPing, ID: 7}))
	f.Add(frameOf(f, request{Kind: reqWrite, ID: 1, Reg: "r", Value: []byte("v")}))
	f.Add([]byte{0, 0, 0, 0})                   // empty frame
	f.Add([]byte{0, 0, 0, 5, 1, 2})             // truncated body
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2}) // oversized length prefix
	f.Add([]byte{0, 0})                         // truncated prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		body, err := readFrame(bytes.NewReader(data))
		rbody, _, rerr := readFrameReuse(bytes.NewReader(data), nil)
		if (err == nil) != (rerr == nil) {
			t.Fatalf("readFrame err=%v, readFrameReuse err=%v", err, rerr)
		}
		if err == nil && !bytes.Equal(body, rbody) {
			t.Fatalf("readFrame body %x, readFrameReuse body %x", body, rbody)
		}
	})
}

func FuzzDecodeRequest(f *testing.F) {
	for _, r := range []request{
		{Kind: reqPing, ID: 1},
		{Kind: reqWrite, ID: 2, Reg: "bench", Value: []byte("payload"), DeadlineUS: 500},
		{Kind: reqRead, ID: 3, Reg: "bench", Consistency: 1},
		{Kind: reqInfo},
	} {
		body, err := encodeRequest(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := decodeRequest(data)
		ri, ierr := decodeRequestReuse(data, map[string]string{})
		if (err == nil) != (ierr == nil) {
			t.Fatalf("decodeRequest err=%v, decodeRequestReuse err=%v", err, ierr)
		}
		if err != nil {
			return
		}
		if !reflect.DeepEqual(r, ri) {
			t.Fatalf("decodeRequest %+v, decodeRequestReuse %+v", r, ri)
		}
		enc, err := encodeRequest(r)
		if err != nil {
			t.Fatalf("decoded request fails to re-encode: %v", err)
		}
		r2, err := decodeRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded request fails to decode: %v", err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("round trip changed the request: %+v != %+v", r, r2)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	for _, r := range []response{
		{Kind: reqPing, ID: 1},
		{Kind: reqWrite, ID: 2, Op: 9, LatencyUS: 17,
			Tag: tag.Tag{Seq: 3, Writer: 1, Rec: 2}, Epoch: 4},
		{Kind: reqRead, ID: 3, Op: 10, Present: true, Value: []byte("payload"),
			Tag: tag.Tag{Seq: 5, Writer: 0, Rec: 1}, Epoch: 4},
		{Kind: reqRecover, ID: 4, LatencyUS: 123456},
		{Kind: reqInfo, ID: 5, NodeID: 1, N: 3, Quorum: 2, Algorithm: 1, Epoch: 7},
		{Kind: reqWrite, ID: 6, Code: codeDown, Msg: "node is down"},
	} {
		body, err := encodeResponse(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := decodeResponse(data)
		if err != nil {
			return
		}
		enc, err := encodeResponse(r)
		if err != nil {
			t.Fatalf("decoded response fails to re-encode: %v", err)
		}
		r2, err := decodeResponse(enc)
		if err != nil {
			t.Fatalf("re-encoded response fails to decode: %v", err)
		}
		// A non-canonical Present byte (anything but 1) decodes as false and
		// re-encodes as 0; everything else must survive untouched.
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("round trip changed the response: %+v != %+v", r, r2)
		}
	})
}
