package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"recmem"
	"recmem/internal/core"
	"recmem/internal/nettcp"
	"recmem/internal/stable"
)

// testMesh is a live n-process emulation over real TCP, each node serving
// the binary control protocol on its own port — an in-process recmem-node
// deployment.
type testMesh struct {
	nodes   []*core.Node
	servers []*Server
}

// controlAddr returns node i's control-port address.
func (m *testMesh) controlAddr(i int) string { return m.servers[i].Addr() }

// startMesh builds the mesh; everything is cleaned up with the test (or
// benchmark — the helper is shared with bench_test.go).
func startMesh(t testing.TB, n int, kind core.AlgorithmKind) *testMesh {
	t.Helper()
	meshes := make([]*nettcp.Mesh, n)
	peers := make([]string, n)
	for i := range meshes {
		m, err := nettcp.Listen(int32(i), "127.0.0.1:0", nettcp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		meshes[i] = m
		peers[i] = m.Addr()
	}
	tm := &testMesh{}
	ids := &atomic.Uint64{}
	for i := range meshes {
		meshes[i].SetPeers(peers)
		var disk stable.Storage
		if kind.Recovers() {
			disk = stable.NewMemDisk(stable.Profile{})
		}
		nd, err := core.NewNode(int32(i), n, kind,
			core.Options{RetransmitEvery: 10 * time.Millisecond},
			core.Deps{Endpoint: meshes[i], Storage: disk, IDs: ids})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Close)
		tm.nodes = append(tm.nodes, nd)

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := Serve(ln, nd, ServerOptions{OpTimeout: 30 * time.Second})
		t.Cleanup(func() { srv.Close() })
		tm.servers = append(tm.servers, srv)
	}
	return tm
}

// dial connects a client to node i's control port.
func (m *testMesh) dial(t testing.TB, i int) *Client {
	t.Helper()
	c, err := Dial(m.controlAddr(i), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func testCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func TestEndToEndWriteRead(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	ctx := testCtx(t)
	c0, c1 := mesh.dial(t, 0), mesh.dial(t, 1)

	if err := c0.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	info, err := c0.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.NodeID != 0 || info.N != 3 || info.Quorum != 2 || info.Algorithm != "persistent" {
		t.Fatalf("info = %+v", info)
	}

	x := c0.Register("x")
	var op recmem.OpID
	if err := x.Write(ctx, []byte("hello"), recmem.WithCost(&op)); err != nil {
		t.Fatal(err)
	}
	if op == 0 {
		t.Fatal("write reported no operation id")
	}
	got, err := c1.Register("x").Read(ctx)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read at node 1 = %q, %v", got, err)
	}

	// Initial value of an untouched register is nil (⊥), not empty.
	none, err := c1.Register("untouched").Read(ctx)
	if err != nil || none != nil {
		t.Fatalf("initial read = %v, %v (want nil)", none, err)
	}

	// An empty written value is indistinguishable from ⊥ end to end (the
	// wire codec carries zero-length as nil); remote matches the simulator.
	if err := x.Write(ctx, []byte{}); err != nil {
		t.Fatal(err)
	}
	got, err = c1.Register("x").Read(ctx)
	if err != nil || len(got) != 0 {
		t.Fatalf("read of written empty value = %v, %v", got, err)
	}
}

// TestPipelinedInFlight drives 150 concurrent operations down ONE
// connection and checks every one completes: the request-id protocol
// sustains arbitrarily many in-flight operations, and the server feeds them
// through the node's batching engine.
func TestPipelinedInFlight(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	ctx := testCtx(t)
	c := mesh.dial(t, 0)

	const inflight = 150
	regs := []*recmem.Register{c.Register("r0"), c.Register("r1"), c.Register("r2"), c.Register("r3")}
	writes := make([]*recmem.WriteFuture, 0, inflight)
	for i := 0; i < inflight; i++ {
		f, err := regs[i%len(regs)].SubmitWrite([]byte(fmt.Sprintf("v%03d", i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		writes = append(writes, f)
	}
	for i, f := range writes {
		if err := f.Wait(ctx); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if f.Op() == 0 {
			t.Fatalf("write %d: no op id after completion", i)
		}
	}

	// A read on each register sees its last write.
	for ri, r := range regs {
		last := -1
		for i := 0; i < inflight; i++ {
			if i%len(regs) == ri {
				last = i
			}
		}
		want := fmt.Sprintf("v%03d", last)
		got, err := r.Read(ctx)
		if err != nil || string(got) != want {
			t.Fatalf("register r%d = %q, %v (want %q)", ri, got, err, want)
		}
	}

	// Pipelined reads share rounds too; all complete.
	reads := make([]*recmem.ReadFuture, 0, inflight)
	for i := 0; i < inflight; i++ {
		f, err := regs[i%len(regs)].SubmitRead()
		if err != nil {
			t.Fatal(err)
		}
		reads = append(reads, f)
	}
	for i, f := range reads {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}

// TestCrashRecoverFlow exercises fault injection through the protocol:
// crash, refused operations, double crash, recovery, durability.
func TestCrashRecoverFlow(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	ctx := testCtx(t)
	c0, c1 := mesh.dial(t, 0), mesh.dial(t, 1)

	if err := c0.Register("x").Write(ctx, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := c0.Crash(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c0.Crash(ctx); !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("double crash: %v", err)
	}
	if err := c0.Register("x").Write(ctx, []byte("nope")); !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("write while down: %v", err)
	}
	// The other replicas keep serving.
	got, err := c1.Register("x").Read(ctx)
	if err != nil || string(got) != "survives" {
		t.Fatalf("read while node 0 down = %q, %v", got, err)
	}
	if err := c1.Recover(ctx); !errors.Is(err, recmem.ErrNotDown) {
		t.Fatalf("recover of an up node: %v", err)
	}
	if err := c0.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	got, err = c0.Register("x").Read(ctx)
	if err != nil || string(got) != "survives" {
		t.Fatalf("read after recovery = %q, %v", got, err)
	}
}

// TestCrashMidRequest checks that operations in flight when the serving
// node crashes surface ErrCrashed through the protocol.
func TestCrashMidRequest(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	ctx := testCtx(t)
	c := mesh.dial(t, 0)

	// Take the other two nodes down so node 0's quorum rounds cannot
	// complete: submitted writes hang in flight.
	mesh.nodes[1].Crash(nil)
	mesh.nodes[2].Crash(nil)

	var futs []*recmem.WriteFuture
	for i := 0; i < 8; i++ {
		f, err := c.Register("x").SubmitWrite([]byte("stuck"))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	// Crash the serving node mid-request: every in-flight op must resolve
	// with ErrCrashed (never hang, never report success).
	if err := c.Crash(ctx); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if err := f.Wait(ctx); !errors.Is(err, recmem.ErrCrashed) {
			t.Fatalf("in-flight write %d after crash: %v (want ErrCrashed)", i, err)
		}
	}
}

// TestConnectionDropFailsPending checks that tearing the TCP connection
// down mid-request fails every pending operation with recmem.ErrCrashed —
// the fate of an operation cut off mid-flight is unknown, exactly like an
// operation interrupted by the process's crash; a partial/short reply is
// never silently dropped as a success. New operations fail fast with
// recmem.ErrDown while the background redialer runs.
func TestConnectionDropFailsPending(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	ctx := testCtx(t)
	c := mesh.dial(t, 0)

	mesh.nodes[1].Crash(nil)
	mesh.nodes[2].Crash(nil)
	var futs []*recmem.WriteFuture
	for i := 0; i < 5; i++ {
		f, err := c.Register("x").SubmitWrite([]byte("stuck"))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	// Kill the server side of the connection.
	mesh.servers[0].Close()
	for i, f := range futs {
		err := f.Wait(ctx)
		if !errors.Is(err, recmem.ErrCrashed) {
			t.Fatalf("pending write %d after connection drop: %v (want ErrCrashed)", i, err)
		}
	}
	// The server is gone for good, so new operations keep failing — fast,
	// with the ErrDown admission error, while the redialer retries in the
	// background.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Register("x").SubmitWrite([]byte("after"))
		if err == nil {
			t.Fatal("submission on a dead connection succeeded")
		}
		if errors.Is(err, recmem.ErrDown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submission after drop = %v (want ErrDown)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDeadlinePropagation checks WithDeadline reaches the server: an
// operation that cannot complete (majority down) fails with
// context.DeadlineExceeded instead of hanging for the server default.
func TestDeadlinePropagation(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	ctx := testCtx(t)
	c := mesh.dial(t, 0)

	mesh.nodes[1].Crash(nil)
	mesh.nodes[2].Crash(nil)
	start := time.Now()
	err := c.Register("x").Write(ctx, []byte("v"), recmem.WithDeadline(50*time.Millisecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline write: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline took %v", elapsed)
	}
}

// TestSafeReadRemote checks read-consistency selection over the wire under
// the RegularSW algorithm, and its rejection under an atomic algorithm.
func TestSafeReadRemote(t *testing.T) {
	mesh := startMesh(t, 3, core.RegularSW)
	ctx := testCtx(t)
	c0, c2 := mesh.dial(t, 0), mesh.dial(t, 2)

	if err := c0.Register("x").Write(ctx, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Register("x").Read(ctx, recmem.WithConsistency(recmem.Safety))
	if err != nil || string(got) != "v1" {
		t.Fatalf("safe read = %q, %v", got, err)
	}
	got, err = c2.Register("x").Read(ctx, recmem.WithConsistency(recmem.Regularity))
	if err != nil || string(got) != "v1" {
		t.Fatalf("regular read = %q, %v", got, err)
	}
	// Writes at a non-writer are refused with the sentinel.
	if err := c2.Register("x").Write(ctx, []byte("nope")); !errors.Is(err, recmem.ErrNotWriter) {
		t.Fatalf("non-writer write: %v", err)
	}

	atomicMesh := startMesh(t, 3, core.Persistent)
	ca := atomicMesh.dial(t, 0)
	if _, err := ca.Register("x").Read(ctx, recmem.WithConsistency(recmem.Safety)); !errors.Is(err, recmem.ErrBadConsistency) {
		t.Fatalf("safe read under persistent: %v", err)
	}
}

// TestUnknownConsistencyByteRejected sends a raw read request with an
// out-of-range consistency byte: the server must answer with an error
// response, not silently run a default read.
func TestUnknownConsistencyByteRejected(t *testing.T) {
	mesh := startMesh(t, 3, core.RegularSW)
	conn, err := net.Dial("tcp", mesh.controlAddr(1))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body, err := encodeRequest(request{Kind: reqRead, ID: 42, Reg: "x", Consistency: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, body); err != nil {
		t.Fatal(err)
	}
	respBody, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeResponse(respBody)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 42 || resp.Code != codeBadRequest {
		t.Fatalf("response = %+v, want id 42 code bad-request", resp)
	}
}

// TestClampUS pins the deadline-field clamping: oversized deadlines clamp
// to the field maximum (never 0, which would mean "no deadline" and let
// the server substitute its much shorter default).
func TestClampUS(t *testing.T) {
	if got := clampUS(0); got != 1 {
		t.Fatalf("clampUS(0) = %d", got)
	}
	if got := clampUS(-5); got != 1 {
		t.Fatalf("clampUS(-5) = %d", got)
	}
	if got := clampUS(1500); got != 1500 {
		t.Fatalf("clampUS(1500) = %d", got)
	}
	twoHours := (2 * time.Hour).Microseconds()
	if got := clampUS(twoHours); got != ^uint32(0) {
		t.Fatalf("clampUS(2h) = %d, want max", got)
	}
	if got := opDeadlineUS(recmem.OpOptions{Deadline: 2 * time.Hour}); got != ^uint32(0) {
		t.Fatalf("opDeadlineUS(2h) = %d, want max", got)
	}
	if got := opDeadlineUS(recmem.OpOptions{}); got != 0 {
		t.Fatalf("opDeadlineUS(none) = %d, want 0", got)
	}
}
