package remote

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"recmem/internal/tag"
	"recmem/internal/wire"
)

// TestRequestRoundTrip round-trips every request kind through the codec.
func TestRequestRoundTrip(t *testing.T) {
	reqs := []request{
		{Kind: reqPing, ID: 1},
		{Kind: reqWrite, ID: 2, Reg: "x", Value: []byte("hello"), DeadlineUS: 1500},
		{Kind: reqWrite, ID: 3, Reg: "", Value: nil},
		{Kind: reqRead, ID: 4, Reg: "sensor", Consistency: 2, DeadlineUS: 42},
		{Kind: reqCrash, ID: 5},
		{Kind: reqRecover, ID: 6, DeadlineUS: 7},
		{Kind: reqInfo, ID: 7},
	}
	for _, want := range reqs {
		body, err := encodeRequest(want)
		if err != nil {
			t.Fatalf("%v: encode: %v", want.Kind, err)
		}
		got, err := decodeRequest(body)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: round trip = %+v, want %+v", want.Kind, got, want)
		}
	}
}

// TestResponseRoundTrip round-trips every response kind, both success and
// error shapes.
func TestResponseRoundTrip(t *testing.T) {
	resps := []response{
		{Kind: reqPing, ID: 1},
		{Kind: reqWrite, ID: 2, Op: 77, LatencyUS: 1234},
		{Kind: reqWrite, ID: 12, Op: 79, LatencyUS: 5, Tag: tag.Tag{Seq: 42, Writer: 2, Rec: 1}},
		{Kind: reqRead, ID: 3, Op: 78, Present: true, Value: []byte("v")},
		{Kind: reqRead, ID: 13, Op: 80, Present: true, Value: []byte("w"), Tag: tag.Tag{Seq: 7, Writer: 1}},
		{Kind: reqRead, ID: 4}, // absent value (⊥), no witness
		{Kind: reqCrash, ID: 5},
		{Kind: reqRecover, ID: 6, LatencyUS: 99},
		{Kind: reqInfo, ID: 7, NodeID: 2, N: 5, Quorum: 3, Algorithm: 3},
		{Kind: reqWrite, ID: 8, Code: codeCrashed, Msg: "process crashed"},
		{Kind: reqRead, ID: 9, Code: codeDown, Msg: "down"},
		{Kind: reqRecover, ID: 10, Code: codeNotDown, Msg: "not down"},
		{Kind: reqPing, ID: 11, Code: codeGeneric, Msg: ""},
	}
	for _, want := range resps {
		body, err := encodeResponse(want)
		if err != nil {
			t.Fatalf("%v: encode: %v", want.Kind, err)
		}
		got, err := decodeResponse(body)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: round trip = %+v, want %+v", want.Kind, got, want)
		}
	}
}

// TestCodecRejections exercises the malformed-input paths: short buffers,
// bad versions, truncated payloads, oversized values.
func TestCodecRejections(t *testing.T) {
	good, err := encodeRequest(request{Kind: reqWrite, ID: 1, Reg: "x", Value: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRequest(good[:reqHeader-1]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short request: %v", err)
	}
	if _, err := decodeRequest(good[:len(good)-1]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated request: %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if _, err := decodeRequest(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	if _, err := encodeRequest(request{Kind: reqWrite, Reg: "x",
		Value: make([]byte, wire.MaxValueSize+1)}); !errors.Is(err, wire.ErrValueTooLarge) {
		t.Fatalf("oversized value: %v", err)
	}
	if _, err := encodeRequest(request{Kind: reqWrite, Reg: strings.Repeat("r", 1<<17)}); err == nil {
		t.Fatal("oversized register name accepted")
	}

	goodResp, err := encodeResponse(response{Kind: reqRead, ID: 1, Present: true, Value: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeResponse(goodResp[:len(goodResp)-1]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated response: %v", err)
	}
	// A request byte where a response is expected (missing respFlag).
	notResp := append([]byte(nil), goodResp...)
	notResp[1] &^= respFlag
	if _, err := decodeResponse(notResp); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("non-response kind byte: %v", err)
	}
}

// TestFrameIO checks the length-prefixed framing, including the size cap
// and short reads.
func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	body, err := readFrame(&buf)
	if err != nil || string(body) != "abc" {
		t.Fatalf("frame round trip = %q, %v", body, err)
	}
	if err := writeFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: %v", err)
	}
	// A length prefix larger than the cap is rejected before allocation.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized prefix: %v", err)
	}
	// A truncated frame is an error, never a silent short read.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 'x', 'y'})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// TestRequestIDRoundTrip pins the request-id contract: the id is a field of
// the codec — encoded by encodeRequest, recovered by decodeRequest — never
// patched into the frame at a hard-coded offset after encoding (the old
// client did exactly that, which would silently corrupt every frame the
// moment the header layout changed). Exercised across the id range and
// request shapes that shift the surrounding bytes.
func TestRequestIDRoundTrip(t *testing.T) {
	ids := []uint64{0, 1, 255, 1 << 16, 1<<32 - 1, 1 << 32, 1<<64 - 1}
	shapes := []request{
		{Kind: reqPing},
		{Kind: reqWrite, Reg: "x", Value: []byte("v"), DeadlineUS: 9},
		{Kind: reqRead, Reg: "a-much-longer-register-name", Consistency: 1},
	}
	for _, id := range ids {
		for _, shape := range shapes {
			req := shape
			req.ID = id
			body, err := encodeRequest(req)
			if err != nil {
				t.Fatalf("id %d %v: encode: %v", id, req.Kind, err)
			}
			got, err := decodeRequest(body)
			if err != nil {
				t.Fatalf("id %d %v: decode: %v", id, req.Kind, err)
			}
			if got.ID != id {
				t.Fatalf("id %d %v: round trip = %d", id, req.Kind, got.ID)
			}
			// Responses echo the id through their own codec path.
			rbody, err := encodeResponse(response{Kind: req.Kind, ID: id})
			if err != nil {
				t.Fatalf("id %d %v: encode response: %v", id, req.Kind, err)
			}
			resp, err := decodeResponse(rbody)
			if err != nil {
				t.Fatalf("id %d %v: decode response: %v", id, req.Kind, err)
			}
			if resp.ID != id {
				t.Fatalf("id %d %v: response round trip = %d", id, req.Kind, resp.ID)
			}
		}
	}
}
