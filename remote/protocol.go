// Package remote connects a recmem.Client to a live recmem-node over TCP:
// the deployment shape of the paper's measurements (one process per
// workstation), driven through the same API as the in-process simulation.
//
// The control protocol is a length-prefixed binary RPC built in the style
// of internal/wire's envelope codec (fixed-width big-endian header fields,
// then variable sections) and sharing its value-size contract
// (wire.MaxValueSize). Every request carries a client-chosen request id and
// the server replies out of order as operations complete, so one connection
// sustains arbitrarily many in-flight operations — remote clients get the
// same pipelining and coalescing the simulated cluster's batching engine
// provides, because the server dispatches every operation through it.
//
// Frame and body layout (all integers big-endian):
//
//	frame    := u32 bodyLen | body            (bodyLen ≤ MaxFrame)
//	request  := u8 version | u8 kind | u64 id | u32 deadline_us |
//	            u8 consistency | u16 regLen | reg | u32 valLen | val
//	response := u8 version | u8 kind|0x80 | u64 id | u8 code | rest
//	rest     := u16 msgLen | msg                        (code != 0)
//	          | per-kind payload                        (code == 0):
//	              ping/crash: (empty)
//	              write:      u64 op | u64 latency_us | tag | u64 epoch
//	              read:       u64 op | u8 present | tag | u64 epoch |
//	                          u32 valLen | val
//	              recover:    u64 latency_us
//	              info:       u32 nodeID | u32 n | u32 quorum |
//	                          u8 algorithm | u64 epoch
//	tag      := u64 seq | u32 writer | u32 rec          (16 bytes)
//
// The tag section (since version 2) is the operation's tag witness: the
// [sn, pid] timestamp the node adopted for the written or returned value,
// or all-zero when there is none (a read of the initial value ⊥, a
// coalesced write superseded within its batch). It gives merged client-side
// histories a server-side ordering witness (docs/adr/0004) instead of
// trusting client clocks.
//
// The epoch section (since version 3) is the node's incarnation epoch
// (docs/adr/0006): a monotonic per-boot counter, persisted in stable storage
// and minted at every recovery, that strictly increases across each of the
// node's deaths — including real process restarts over the same directory.
// Write and read replies carry the epoch the operation completed under
// (zero never appears on success); the info reply carries the node's current
// epoch so the handshake pins the incarnation a connection starts against.
// Recording clients compare reply epochs to infer crash/recover events
// nobody injected, which is what lets kill-restart meshes verify under
// transient atomicity.
//
// Versioning rules (docs/adr/0003): the version byte is bumped only for
// incompatible layout changes — version 2 widened the write and read reply
// payloads by the tag section, version 3 widened write, read and info
// replies by the epoch section; earlier decoders would reject either.
// A server receiving an unknown version or kind answers with an error
// response (code badRequest) instead of dropping the connection, so old
// clients fail op-by-op, not connection-wide. New request kinds and new
// error codes are backward-compatible extensions.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"recmem/internal/tag"
	"recmem/internal/wire"
)

// Version is the protocol version this package speaks. Version 2 added the
// tag-witness section to write and read replies; version 3 added the
// incarnation-epoch section to write, read and info replies.
const Version = 3

// MaxFrame bounds one frame body: generous for a maximal value
// (wire.MaxValueSize) plus headers, small enough to reject garbage length
// prefixes before allocating.
const MaxFrame = 1 << 20

// reqKind identifies a request type.
type reqKind uint8

// Request kinds.
const (
	reqPing reqKind = iota + 1
	reqWrite
	reqRead
	reqCrash
	reqRecover
	reqInfo
	reqKindMax = reqInfo
)

// respFlag marks a response's kind byte.
const respFlag = 0x80

// String returns the request kind mnemonic.
func (k reqKind) String() string {
	switch k {
	case reqPing:
		return "PING"
	case reqWrite:
		return "WRITE"
	case reqRead:
		return "READ"
	case reqCrash:
		return "CRASH"
	case reqRecover:
		return "RECOVER"
	case reqInfo:
		return "INFO"
	default:
		return fmt.Sprintf("reqKind(%d)", uint8(k))
	}
}

// errCode classifies an error response; codes map back to the recmem
// sentinel errors on the client.
type errCode uint8

// Error codes (0 is success).
const (
	codeGeneric errCode = iota + 1
	codeCrashed
	codeDown
	codeNotDown
	codeCannotRecover
	codeNotWriter
	codeValueTooLarge
	codeBadConsistency
	codeDeadline
	codeBadRequest
)

// Protocol errors.
var (
	// ErrFrameTooLarge is returned when a frame exceeds MaxFrame.
	ErrFrameTooLarge = errors.New("remote: frame exceeds MaxFrame")
	// ErrBadVersion is returned for an unknown protocol version byte.
	ErrBadVersion = errors.New("remote: unknown protocol version")
	// ErrBadFrame is returned for a structurally malformed frame body.
	ErrBadFrame = errors.New("remote: malformed frame")
)

// request is one decoded request.
type request struct {
	Kind reqKind
	// ID correlates the response; chosen by the client, echoed verbatim.
	ID uint64
	// DeadlineUS bounds the server-side wait in microseconds (0 = none).
	DeadlineUS uint32
	// Consistency is the read mode byte (core.ReadMode numbering).
	Consistency uint8
	// Reg names the register for reads and writes.
	Reg string
	// Value is the written value.
	Value []byte
}

// response is one decoded response.
type response struct {
	Kind reqKind
	ID   uint64
	Code errCode
	Msg  string
	// Op is the server-side operation id (write and read).
	Op uint64
	// LatencyUS is the server-observed operation latency (write, recover).
	LatencyUS uint64
	// Present distinguishes a written empty value from the initial ⊥ (read).
	Present bool
	// Value is the read result.
	Value []byte
	// Tag is the operation's tag witness (write and read; zero = none).
	Tag tag.Tag
	// Epoch is the node's incarnation epoch (write, read, info; never zero
	// on a successful operation — see docs/adr/0006).
	Epoch uint64
	// Info payload.
	NodeID, N, Quorum int32
	Algorithm         uint8
}

// tagSize is the wire width of a tag section: u64 seq, u32 writer, u32 rec.
const tagSize = 8 + 4 + 4

// appendTag serializes a tag section.
func appendTag(buf []byte, t tag.Tag) []byte {
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.Seq))
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.Writer))
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.Rec))
	return buf
}

// decodeTag parses a tag section (the caller has checked the length).
func decodeTag(b []byte) tag.Tag {
	return tag.Tag{
		Seq:    int64(binary.BigEndian.Uint64(b)),
		Writer: int32(binary.BigEndian.Uint32(b[8:])),
		Rec:    int32(binary.BigEndian.Uint32(b[12:])),
	}
}

const reqHeader = 1 + 1 + 8 + 4 + 1 + 2 + 4 // version..valLen

// encodeRequest serializes a request body.
func encodeRequest(r request) ([]byte, error) {
	return appendRequest(make([]byte, 0, reqHeader+len(r.Reg)+len(r.Value)), r)
}

// appendRequest appends the request body to buf and returns the extended
// slice: the allocation-free form of encodeRequest for the pooled send
// paths.
func appendRequest(buf []byte, r request) ([]byte, error) {
	if len(r.Value) > wire.MaxValueSize {
		return nil, wire.ErrValueTooLarge
	}
	if len(r.Reg) > 0xFFFF {
		return nil, fmt.Errorf("remote: register name too long (%d bytes)", len(r.Reg))
	}
	buf = append(buf, Version, byte(r.Kind))
	buf = binary.BigEndian.AppendUint64(buf, r.ID)
	buf = binary.BigEndian.AppendUint32(buf, r.DeadlineUS)
	buf = append(buf, r.Consistency)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Reg)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Value)))
	buf = append(buf, r.Reg...)
	buf = append(buf, r.Value...)
	return buf, nil
}

// decodeRequest parses a request body. The returned request owns its
// fields: the register name and value are copied out of buf.
func decodeRequest(buf []byte) (request, error) {
	return decodeRequestReuse(buf, nil)
}

// decodeRequestReuse is decodeRequest for a buffer that will be reused: the
// register name is resolved through names — a per-connection intern table
// mapping each name to its one owned string — so the steady-state decode
// of a busy connection allocates only the value copy. A nil names table
// degrades to decodeRequest.
func decodeRequestReuse(buf []byte, names map[string]string) (request, error) {
	var r request
	if len(buf) < reqHeader {
		return r, ErrBadFrame
	}
	if buf[0] != Version {
		return r, ErrBadVersion
	}
	r.Kind = reqKind(buf[1])
	r.ID = binary.BigEndian.Uint64(buf[2:])
	r.DeadlineUS = binary.BigEndian.Uint32(buf[10:])
	r.Consistency = buf[14]
	regLen := int(binary.BigEndian.Uint16(buf[15:]))
	valLen := int(binary.BigEndian.Uint32(buf[17:]))
	if valLen > wire.MaxValueSize {
		return r, wire.ErrValueTooLarge
	}
	rest := buf[reqHeader:]
	if len(rest) != regLen+valLen {
		return r, ErrBadFrame
	}
	if names == nil {
		r.Reg = string(rest[:regLen])
	} else if s, ok := names[string(rest[:regLen])]; ok { // no-alloc map probe
		r.Reg = s
	} else {
		s := string(rest[:regLen])
		names[s] = s
		r.Reg = s
	}
	if valLen > 0 {
		r.Value = make([]byte, valLen)
		copy(r.Value, rest[regLen:])
	}
	return r, nil
}

const respHeader = 1 + 1 + 8 + 1 // version, kind, id, code

// encodeResponse serializes a response body.
func encodeResponse(r response) ([]byte, error) {
	return appendResponse(make([]byte, 0, respHeader+16+len(r.Msg)+len(r.Value)), r)
}

// appendResponse appends the response body to buf and returns the extended
// slice: the allocation-free form of encodeResponse for the pooled reply
// path.
func appendResponse(buf []byte, r response) ([]byte, error) {
	buf = append(buf, Version, byte(r.Kind)|respFlag)
	buf = binary.BigEndian.AppendUint64(buf, r.ID)
	buf = append(buf, byte(r.Code))
	if r.Code != 0 {
		if len(r.Msg) > 0xFFFF {
			r.Msg = r.Msg[:0xFFFF]
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Msg)))
		buf = append(buf, r.Msg...)
		return buf, nil
	}
	switch r.Kind {
	case reqPing, reqCrash:
	case reqWrite:
		buf = binary.BigEndian.AppendUint64(buf, r.Op)
		buf = binary.BigEndian.AppendUint64(buf, r.LatencyUS)
		buf = appendTag(buf, r.Tag)
		buf = binary.BigEndian.AppendUint64(buf, r.Epoch)
	case reqRead:
		if len(r.Value) > wire.MaxValueSize {
			return nil, wire.ErrValueTooLarge
		}
		buf = binary.BigEndian.AppendUint64(buf, r.Op)
		present := byte(0)
		if r.Present {
			present = 1
		}
		buf = append(buf, present)
		buf = appendTag(buf, r.Tag)
		buf = binary.BigEndian.AppendUint64(buf, r.Epoch)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Value)))
		buf = append(buf, r.Value...)
	case reqRecover:
		buf = binary.BigEndian.AppendUint64(buf, r.LatencyUS)
	case reqInfo:
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.NodeID))
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.N))
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.Quorum))
		buf = append(buf, r.Algorithm)
		buf = binary.BigEndian.AppendUint64(buf, r.Epoch)
	default:
		return nil, ErrBadFrame
	}
	return buf, nil
}

// decodeResponse parses a response body.
func decodeResponse(buf []byte) (response, error) {
	var r response
	if len(buf) < respHeader {
		return r, ErrBadFrame
	}
	if buf[0] != Version {
		return r, ErrBadVersion
	}
	if buf[1]&respFlag == 0 {
		return r, ErrBadFrame
	}
	r.Kind = reqKind(buf[1] &^ byte(respFlag))
	r.ID = binary.BigEndian.Uint64(buf[2:])
	r.Code = errCode(buf[10])
	rest := buf[respHeader:]
	if r.Code != 0 {
		if len(rest) < 2 {
			return r, ErrBadFrame
		}
		n := int(binary.BigEndian.Uint16(rest))
		if len(rest) != 2+n {
			return r, ErrBadFrame
		}
		r.Msg = string(rest[2:])
		return r, nil
	}
	switch r.Kind {
	case reqPing, reqCrash:
		if len(rest) != 0 {
			return r, ErrBadFrame
		}
	case reqWrite:
		if len(rest) != 24+tagSize {
			return r, ErrBadFrame
		}
		r.Op = binary.BigEndian.Uint64(rest)
		r.LatencyUS = binary.BigEndian.Uint64(rest[8:])
		r.Tag = decodeTag(rest[16:])
		r.Epoch = binary.BigEndian.Uint64(rest[16+tagSize:])
	case reqRead:
		if len(rest) < 21+tagSize {
			return r, ErrBadFrame
		}
		r.Op = binary.BigEndian.Uint64(rest)
		r.Present = rest[8] == 1
		r.Tag = decodeTag(rest[9:])
		r.Epoch = binary.BigEndian.Uint64(rest[9+tagSize:])
		n := int(binary.BigEndian.Uint32(rest[17+tagSize:]))
		if n > wire.MaxValueSize || len(rest) != 21+tagSize+n {
			return r, ErrBadFrame
		}
		if n > 0 {
			r.Value = make([]byte, n)
			copy(r.Value, rest[21+tagSize:])
		}
	case reqRecover:
		if len(rest) != 8 {
			return r, ErrBadFrame
		}
		r.LatencyUS = binary.BigEndian.Uint64(rest)
	case reqInfo:
		if len(rest) != 21 {
			return r, ErrBadFrame
		}
		r.NodeID = int32(binary.BigEndian.Uint32(rest))
		r.N = int32(binary.BigEndian.Uint32(rest[4:]))
		r.Quorum = int32(binary.BigEndian.Uint32(rest[8:]))
		r.Algorithm = rest[12]
		r.Epoch = binary.BigEndian.Uint64(rest[13:])
	default:
		return r, ErrBadFrame
	}
	return r, nil
}

// writeFrame writes one length-prefixed frame as a single Write, staging
// the prefix and body in a recycled buffer instead of a per-call
// allocation. The hot paths skip it entirely (they build prefixed frames in
// place with appendRequestFrame/appendResponseFrame); it remains for the
// cold paths — handshake, tests.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	f := getFrame()
	defer putFrame(f)
	frame := binary.BigEndian.AppendUint32(f.b[:0], uint32(len(body)))
	frame = append(frame, body...)
	f.b = frame
	_, err := w.Write(frame)
	return err
}

// readFrame reads one length-prefixed frame body. A short or oversized
// frame is an error, never a silent truncation.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}
