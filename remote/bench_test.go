package remote

// Benchmarks for the remote hot path: one client driving a live 3-process
// emulation over loopback TCP, every node serving the binary control
// protocol — the deployment shape of the paper's measurements, with the
// wire as the instrument under test. All three report allocs/op
// (-benchmem / b.ReportAllocs), so an allocation regression on the frame
// path fails loudly in review; `make bench-remote` turns their output into
// the BENCH_remote.json trajectory.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"recmem"
	"recmem/internal/core"
)

// benchValue is the written payload: big enough that a per-frame copy would
// show, small enough to stay in the coalescing sweet spot.
var benchValue = []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")

// benchMesh boots the loopback mesh and one client, outside the timer.
func benchMesh(b *testing.B) (*Client, context.Context) {
	b.Helper()
	mesh := startMesh(b, 3, core.Persistent)
	c := mesh.dial(b, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	b.Cleanup(cancel)
	return c, ctx
}

// BenchmarkRemoteWrite measures the closed-loop write round-trip: one
// operation in flight at a time, so the number is dominated by protocol
// latency, not coalescing.
func BenchmarkRemoteWrite(b *testing.B) {
	c, ctx := benchMesh(b)
	reg := c.Register("bench")
	if err := reg.Write(ctx, benchValue); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.Write(ctx, benchValue); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteRead measures the closed-loop read round-trip, value
// payload included (the read reply carries the value back).
func BenchmarkRemoteRead(b *testing.B) {
	c, ctx := benchMesh(b)
	reg := c.Register("bench")
	if err := reg.Write(ctx, benchValue); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Read(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWindow is the pipelined submission window: enough in-flight
// operations for the engine to coalesce quorum rounds and the wire to
// group-commit frames.
const benchWindow = 64

// BenchmarkRemotePipelined measures the steady-state pipelined write path —
// benchWindow operations in flight down one connection — which is where the
// frame pool, the client's write coalescing and the server's reply
// group-commit all engage. This is the allocs/op number the zero-allocation
// acceptance bar is checked against.
func BenchmarkRemotePipelined(b *testing.B) {
	c, ctx := benchMesh(b)
	regs := make([]*recmem.Register, 4)
	for i := range regs {
		regs[i] = c.Register(fmt.Sprintf("bench%d", i))
	}
	if err := regs[0].Write(ctx, benchValue); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	futs := make([]*recmem.WriteFuture, 0, benchWindow)
	flush := func() {
		for _, f := range futs {
			if err := f.Wait(ctx); err != nil {
				b.Fatal(err)
			}
		}
		futs = futs[:0]
	}
	for i := 0; i < b.N; i++ {
		f, err := regs[i%len(regs)].SubmitWrite(benchValue)
		if err != nil {
			b.Fatal(err)
		}
		futs = append(futs, f)
		if len(futs) == benchWindow {
			flush()
		}
	}
	flush()
}
