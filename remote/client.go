package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"recmem"
	"recmem/internal/core"
	"recmem/internal/tag"
)

// Client errors.
var (
	// ErrClosed is returned by operations on a closed client.
	ErrClosed = errors.New("remote: client closed")
)

// Error is a server-reported failure that does not map to one of the
// recmem sentinel errors.
type Error struct {
	// Kind is the request the error answers.
	Kind string
	// Msg is the server's message.
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("remote: %s: %s", e.Kind, e.Msg) }

// Options tunes a client.
type Options struct {
	// DialTimeout bounds connection establishment (default 5 s).
	DialTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	return o
}

// Client is a recmem.Client backed by one TCP connection to a recmem-node
// control port. Operations are pipelined: every request carries an id and
// the client matches responses as they arrive, so arbitrarily many
// operations may be in flight on the one connection — the node dispatches
// them through its batching engine, giving remote submissions the same
// coalescing and register pipelining as the simulated cluster's
// asynchronous API. Clients are safe for concurrent use.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]*call
	nextID  uint64
	sticky  error // terminal transport error; set once
}

var (
	_ recmem.Client     = (*Client)(nil)
	_ recmem.Future     = (*call)(nil)
	_ recmem.TagWitness = (*call)(nil)
)

// Dial connects to a recmem-node control port.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // pipelined request/response traffic
	}
	c := &Client{conn: conn, pending: make(map[uint64]*call)}
	go c.readLoop()
	return c, nil
}

// call is one in-flight request; it implements recmem.Future and
// recmem.TagWitness.
type call struct {
	cl   *Client
	kind reqKind
	id   uint64
	done chan struct{}
	// set before done is closed, immutable after:
	op   uint64
	val  []byte
	lat  time.Duration
	tg   tag.Tag
	info Info
	err  error
}

// Op returns the server-side operation id, 0 until Done.
func (c *call) Op() uint64 {
	select {
	case <-c.done:
		return c.op
	default:
		return 0
	}
}

// TagWitness returns the operation's tag witness once done: the tag the
// node adopted for the written or returned value. ok is false before
// completion and for operations without a witness.
func (c *call) TagWitness() (recmem.Tag, bool) {
	select {
	case <-c.done:
		return c.tg, !c.tg.IsZero()
	default:
		return tag.Tag{}, false
	}
}

// Done returns a channel closed when the response (or a connection error)
// arrived.
func (c *call) Done() <-chan struct{} { return c.done }

// Wait blocks for the response. Cancelling ctx abandons the operation: the
// call is deregistered — completing with ctx's error for every waiter — so
// a late server reply is discarded instead of leaking the pending-call
// entry for the connection's lifetime. The server may still execute the
// operation; only the client-side wait is released.
func (c *call) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		if c.cl.deregister(c) {
			// We won the race against the reader: no reply will complete
			// this call, so resolve it with the cancellation.
			c.complete(nil, 0, 0, tag.Tag{}, ctx.Err())
		}
		// Either we completed it above, or the reader (a reply or a
		// connection failure) owns the entry and is about to.
		<-c.done
		return c.val, c.err
	}
}

func (c *call) complete(val []byte, op uint64, lat time.Duration, tg tag.Tag, err error) {
	c.val, c.op, c.lat, c.tg, c.err = val, op, lat, tg, err
	close(c.done)
}

// send registers a call and writes its request frame.
func (c *Client) send(req request) (*call, error) {
	body, err := encodeRequest(req)
	if err != nil {
		return nil, err
	}
	cl := &call{cl: c, kind: req.Kind, done: make(chan struct{})}

	c.mu.Lock()
	if c.sticky != nil {
		err := c.sticky
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	cl.id = c.nextID
	c.pending[cl.id] = cl
	c.mu.Unlock()

	// Patch the id into the encoded frame (offset 2, after version+kind).
	for i, b := 0, cl.id; i < 8; i++ {
		body[2+7-i] = byte(b)
		b >>= 8
	}

	c.wmu.Lock()
	err = writeFrame(c.conn, body)
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("remote: write: %w", err))
		return nil, err
	}
	return cl, nil
}

// readLoop matches response frames to pending calls until the connection
// dies, then fails everything still in flight.
func (c *Client) readLoop() {
	for {
		body, err := readFrame(c.conn)
		if err != nil {
			// The error may be protocol-level (e.g. an oversized length
			// prefix) with the socket still open: close it so the server
			// side is released too.
			c.fail(fmt.Errorf("remote: connection: %w", err))
			_ = c.conn.Close()
			return
		}
		resp, err := decodeResponse(body)
		if err != nil {
			c.fail(fmt.Errorf("remote: %w", err))
			_ = c.conn.Close()
			return
		}
		c.mu.Lock()
		cl := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if cl == nil {
			continue // response to an abandoned (deregistered) id; ignore
		}
		if resp.Code != 0 {
			cl.complete(nil, 0, 0, tag.Tag{}, errorFromCode(cl.kind, resp.Code, resp.Msg))
			continue
		}
		val := resp.Value
		if resp.Kind == reqRead && !resp.Present {
			val = nil
		}
		if resp.Kind == reqInfo {
			cl.info = Info{NodeID: int(resp.NodeID), N: int(resp.N), Quorum: int(resp.Quorum),
				Algorithm: core.AlgorithmKind(resp.Algorithm).String()}
		}
		cl.complete(val, resp.Op, time.Duration(resp.LatencyUS)*time.Microsecond, resp.Tag, nil)
	}
}

// deregister removes cl from the pending map if it still owns its entry,
// reporting whether the caller is now responsible for completing it. The
// map entry is the completion token: whoever removes it (a reply in
// readLoop, fail's map swap, or a cancelled Wait) completes the call
// exactly once.
func (c *Client) deregister(cl *call) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending[cl.id] != cl {
		return false
	}
	delete(c.pending, cl.id)
	return true
}

// fail terminates the client: the sticky error answers every pending and
// future call.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.sticky == nil {
		c.sticky = err
	}
	pending := c.pending
	c.pending = make(map[uint64]*call)
	c.mu.Unlock()
	for _, cl := range pending {
		cl.complete(nil, 0, 0, tag.Tag{}, err)
	}
}

// Close closes the connection; pending operations fail with ErrClosed.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return c.conn.Close()
}

// errorFromCode maps a server error code back to the canonical error.
func errorFromCode(kind reqKind, code errCode, msg string) error {
	switch code {
	case codeCrashed:
		return recmem.ErrCrashed
	case codeDown:
		return recmem.ErrDown
	case codeNotDown:
		return recmem.ErrNotDown
	case codeCannotRecover:
		return recmem.ErrCannotRecover
	case codeNotWriter:
		return recmem.ErrNotWriter
	case codeBadConsistency:
		return recmem.ErrBadConsistency
	case codeDeadline:
		return context.DeadlineExceeded
	default:
		return &Error{Kind: kind.String(), Msg: msg}
	}
}

// Register resolves a handle on the named register; the request template
// (encoded name, consistency validation) is fixed once per handle.
func (c *Client) Register(name string) *recmem.Register {
	return recmem.NewRegister(name, &remoteRegister{c: c, name: name})
}

// do sends a request and waits it out. The call's result fields are only
// touched through the done-gated Wait — an abandoned wait (ctx expiry)
// leaves them to the reader goroutine.
func (c *Client) do(ctx context.Context, req request) error {
	cl, err := c.send(req)
	if err != nil {
		return err
	}
	_, err = cl.Wait(ctx)
	return err
}

// Ping round-trips the connection.
func (c *Client) Ping(ctx context.Context) error {
	return c.do(ctx, request{Kind: reqPing})
}

// Info describes the node behind the connection.
type Info struct {
	// NodeID is the node's process id; N the emulation size; Quorum the
	// majority ⌈(N+1)/2⌉.
	NodeID, N, Quorum int
	// Algorithm is the emulation algorithm the node runs.
	Algorithm string
}

// Info queries the node's identity and emulation parameters.
func (c *Client) Info(ctx context.Context) (Info, error) {
	cl, err := c.send(request{Kind: reqInfo})
	if err != nil {
		return Info{}, err
	}
	if _, err := cl.Wait(ctx); err != nil {
		return Info{}, err
	}
	return cl.info, nil
}

// Crash fails the process behind the node: its volatile state is lost and
// in-flight operations (of every client) return ErrCrashed.
func (c *Client) Crash(ctx context.Context) error {
	return c.do(ctx, request{Kind: reqCrash})
}

// Recover restarts the crashed process, blocking until the algorithm's
// recovery procedure completes (a reachable majority for the persistent
// algorithm).
func (c *Client) Recover(ctx context.Context) error {
	return c.do(ctx, request{Kind: reqRecover, DeadlineUS: deadlineUS(ctx)})
}

// deadlineUS converts a context deadline to the wire's microsecond field.
// Deadlines beyond the field's range (~71 minutes) are clamped to its
// maximum, never to 0 ("no deadline"), so a long client deadline is not
// silently replaced by the server's much shorter default.
func deadlineUS(ctx context.Context) uint32 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	return clampUS(time.Until(d).Microseconds())
}

// clampUS clamps a microsecond count into the wire field: at least 1 (an
// already-expired deadline must still read as "bounded"), at most the
// field's maximum.
func clampUS(us int64) uint32 {
	if us <= 0 {
		return 1
	}
	if us > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(us)
}

// remoteRegister is the recmem.RegisterBackend over one connection.
type remoteRegister struct {
	c    *Client
	name string
}

var _ recmem.RegisterBackend = (*remoteRegister)(nil)

// opDeadlineUS resolves the per-op deadline shipped to the server; like
// deadlineUS, oversized deadlines clamp to the field's maximum. Only the
// zero value means "no deadline": a negative (already-expired) deadline
// ships the minimum representable bound (1µs) — the old `<= 0` guard
// silently converted a dead operation into an unbounded one.
func opDeadlineUS(o recmem.OpOptions) uint32 {
	if o.Deadline == 0 {
		return 0
	}
	return clampUS(o.Deadline.Microseconds())
}

func (r *remoteRegister) Read(ctx context.Context, o recmem.OpOptions) ([]byte, recmem.OpID, error) {
	fut, err := r.SubmitRead(o)
	if err != nil {
		return nil, 0, err
	}
	val, err := fut.Wait(ctx)
	setWitness(o, fut, err)
	return val, recmem.OpID(fut.Op()), err
}

func (r *remoteRegister) Write(ctx context.Context, val []byte, o recmem.OpOptions) (recmem.OpID, error) {
	fut, err := r.SubmitWrite(val, o)
	if err != nil {
		return 0, err
	}
	_, err = fut.Wait(ctx)
	setWitness(o, fut, err)
	return recmem.OpID(fut.Op()), err
}

// setWitness resolves the WithWitness capture like every backend: the
// operation's tag on success, zero on failure — a failed operation must
// never leave a previous operation's witness in the caller's variable.
func setWitness(o recmem.OpOptions, fut recmem.Future, err error) {
	if o.Witness == nil {
		return
	}
	*o.Witness = tag.Tag{}
	if err == nil {
		*o.Witness, _ = fut.(*call).TagWitness()
	}
}

func (r *remoteRegister) SubmitRead(o recmem.OpOptions) (recmem.Future, error) {
	// The shared mapping is the wire contract: core.ReadMode numbering is
	// the protocol's consistency byte. Algorithm validation happens at the
	// node.
	mode, err := o.ReadMode()
	if err != nil {
		return nil, err
	}
	return r.c.send(request{Kind: reqRead, Reg: r.name,
		Consistency: uint8(mode), DeadlineUS: opDeadlineUS(o)})
}

func (r *remoteRegister) SubmitWrite(val []byte, o recmem.OpOptions) (recmem.Future, error) {
	return r.c.send(request{Kind: reqWrite, Reg: r.name,
		Value: val, DeadlineUS: opDeadlineUS(o)})
}
