package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"recmem"
	"recmem/internal/core"
	"recmem/internal/tag"
)

// Client errors.
var (
	// ErrClosed is returned by operations on a closed client.
	ErrClosed = errors.New("remote: client closed")
	// ErrRedialExhausted marks the terminal error of a client whose
	// redialer gave up: Options.RedialAttempts consecutive reconnection
	// attempts failed (or redialing was disabled). Every subsequent
	// operation returns an error wrapping it.
	ErrRedialExhausted = errors.New("remote: redial attempts exhausted")
)

// Error is a server-reported failure that does not map to one of the
// recmem sentinel errors.
type Error struct {
	// Kind is the request the error answers.
	Kind string
	// Msg is the server's message.
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("remote: %s: %s", e.Kind, e.Msg) }

// ConnState is the connection lifecycle state reported to
// Options.OnStateChange.
type ConnState int

// Connection states.
const (
	// StateConnected: a connection (initial or redialed) passed the
	// version/Info handshake and is carrying operations.
	StateConnected ConnState = iota + 1
	// StateReconnecting: the transport failed; pending operations were
	// resolved with recmem.ErrCrashed (fate unknown) and the background
	// redialer is trying to re-establish the connection. New operations
	// fail fast with recmem.ErrDown until it succeeds.
	StateReconnecting
	// StateTerminal: the client is permanently done — Close was called,
	// the server spoke an incompatible protocol version, or the redialer
	// exhausted its attempts. Every operation returns the sticky error.
	StateTerminal
)

// String returns the state name.
func (s ConnState) String() string {
	switch s {
	case StateConnected:
		return "connected"
	case StateReconnecting:
		return "reconnecting"
	case StateTerminal:
		return "terminal"
	default:
		return fmt.Sprintf("ConnState(%d)", int(s))
	}
}

// Options tunes a client.
type Options struct {
	// DialTimeout bounds connection establishment, including the
	// version/Info handshake (default 5 s). Redial attempts use the same
	// bound per attempt.
	DialTimeout time.Duration
	// RedialAttempts caps how many consecutive failed reconnection
	// attempts the background redialer makes before the client turns
	// terminal (ErrRedialExhausted). 0 means retry forever — the node is
	// expected back, as in the paper's crash-recovery model. A negative
	// value disables redialing entirely: the first transport failure is
	// terminal, the pre-reconnect behavior.
	RedialAttempts int
	// RedialMin is the backoff before the first redial attempt (default
	// 25 ms); it doubles per failed attempt up to RedialMax (default 2 s).
	RedialMin time.Duration
	RedialMax time.Duration
	// OnStateChange, if non-nil, observes connection lifecycle
	// transitions: StateReconnecting with the transport error that cut the
	// connection, StateConnected with a nil cause when a redial succeeds,
	// StateTerminal with the sticky error. Transitions are queued at the
	// state change and delivered one at a time, in transition order, by a
	// dedicated goroutine — a blocking callback delays later notifications,
	// never operations.
	OnStateChange func(state ConnState, cause error)
	// Conns is the number of TCP connections the client stripes registers
	// across (default 1: the single pipelined connection). More than one is
	// the opt-in knob for more than one core of server ingest: each
	// connection runs its own read loop and write coalescer, and every
	// register is pinned to one connection by a hash of its name, so the
	// per-register submission order the engine's coalescing relies on is
	// preserved. Control operations (Ping, Info, Crash, Recover) and
	// OnStateChange notifications ride the primary connection; each stripe
	// redials — and can turn terminal — independently.
	Conns int
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RedialMin <= 0 {
		o.RedialMin = 25 * time.Millisecond
	}
	if o.RedialMax <= 0 {
		o.RedialMax = 2 * time.Second
	}
	if o.RedialMax < o.RedialMin {
		o.RedialMax = o.RedialMin
	}
	return o
}

// Client is a recmem.Client backed by one TCP connection to a recmem-node
// control port. Operations are pipelined: every request carries an id and
// the client matches responses as they arrive, so arbitrarily many
// operations may be in flight on the one connection — the node dispatches
// them through its batching engine, giving remote submissions the same
// coalescing and register pipelining as the simulated cluster's
// asynchronous API. Clients are safe for concurrent use.
//
// A client survives the death of its transport: when the connection fails,
// every pending operation resolves with recmem.ErrCrashed — the fate of an
// operation cut off mid-flight is unknown, exactly like an operation
// interrupted by the process's crash — and a background redialer
// re-establishes the connection (re-running the version/Info handshake)
// with capped exponential backoff. While disconnected, new operations fail
// fast with recmem.ErrDown; once the node is back they proceed without the
// caller re-dialing. Only Close, a protocol-version mismatch, and the
// redialer giving up (Options.RedialAttempts) are terminal.
type Client struct {
	addr string
	opts Options

	// stripes is the fan-out table when Options.Conns > 1: stripes[0] is
	// this client, the rest are secondary single-connection clients. Set
	// once by Dial, immutable after — stripeFor reads it without the lock.
	stripes []*Client

	mu       sync.Mutex
	conn     net.Conn    // nil while disconnected (redialer running)
	cw       *connWriter // write coalescer for conn; replaced per connection
	gen      uint64      // bumped per established connection; stales old readLoops
	pending  map[uint64]*call
	nextID   uint64
	sticky   error // terminal error; set once
	closed   bool
	info     Info // identity from the last successful handshake
	haveInfo bool

	// cbq queues OnStateChange transitions in the order they happened (they
	// are enqueued inside the state transition, under mu); one drainer
	// goroutine at a time delivers them, so callbacks observe transitions
	// sequentially even when the underlying goroutines race.
	cbq        []stateEvent
	cbDraining bool
}

// stateEvent is one queued OnStateChange notification.
type stateEvent struct {
	state ConnState
	cause error
}

// notifyLocked queues a state transition for delivery; the caller holds
// c.mu at the transition point, which is what makes the queue order the
// transition order.
func (c *Client) notifyLocked(state ConnState, cause error) {
	if c.opts.OnStateChange == nil {
		return
	}
	c.cbq = append(c.cbq, stateEvent{state, cause})
	if c.cbDraining {
		return
	}
	c.cbDraining = true
	go c.drainStateQueue()
}

// drainStateQueue delivers queued transitions until the queue empties.
func (c *Client) drainStateQueue() {
	for {
		c.mu.Lock()
		if len(c.cbq) == 0 {
			c.cbDraining = false
			c.mu.Unlock()
			return
		}
		ev := c.cbq[0]
		c.cbq = c.cbq[1:]
		c.mu.Unlock()
		c.opts.OnStateChange(ev.state, ev.cause)
	}
}

var (
	_ recmem.Client       = (*Client)(nil)
	_ recmem.Future       = (*call)(nil)
	_ recmem.TagWitness   = (*call)(nil)
	_ recmem.EpochWitness = (*call)(nil)
)

// Dial connects to a recmem-node control port and runs the version/Info
// handshake, so a successful Dial proves the peer speaks this protocol
// version and reports its node identity (see Info). With Options.Conns > 1
// it opens that many connections and stripes registers across them by name
// (see Options.Conns); a failure dialing any stripe fails the whole Dial.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	c, err := dialSingle(addr, opts)
	if err != nil {
		return nil, err
	}
	if opts.Conns <= 1 {
		return c, nil
	}
	c.stripes = make([]*Client, opts.Conns)
	c.stripes[0] = c
	sopts := opts
	sopts.Conns = 1
	sopts.OnStateChange = nil // lifecycle notifications ride the primary
	for i := 1; i < opts.Conns; i++ {
		s, err := dialSingle(addr, sopts)
		if err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("remote: dial stripe %d/%d: %w", i+1, opts.Conns, err)
		}
		c.stripes[i] = s
	}
	return c, nil
}

// dialSingle dials one connection and builds a single-connection client
// around it.
func dialSingle(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts, pending: make(map[uint64]*call)}
	conn, info, err := c.connect()
	if err != nil {
		return nil, err
	}
	c.conn, c.cw, c.info, c.haveInfo = conn, newConnWriter(conn), info, true
	go c.readLoop(conn, c.gen)
	return c, nil
}

// Addr returns the control-port address the client (re)dials.
func (c *Client) Addr() string { return c.addr }

// connect dials the node and runs the handshake; it owns the returned
// connection until the caller installs it.
func (c *Client) connect() (net.Conn, Info, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, Info{}, fmt.Errorf("remote: dial %s: %w", c.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // pipelined request/response traffic
	}
	info, err := handshake(conn, c.opts.DialTimeout)
	if err != nil {
		_ = conn.Close()
		return nil, Info{}, err
	}
	return conn, info, nil
}

// handshake runs the version/Info exchange on a fresh connection before it
// carries any operation. Request id 0 is reserved for it — calls number
// from 1 — so the reply can never be confused with an operation's. A
// version mismatch surfaces here (the reply fails to decode with
// ErrBadVersion), making incompatible peers a dial-time error instead of a
// per-operation one.
func handshake(conn net.Conn, timeout time.Duration) (Info, error) {
	body, err := encodeRequest(request{Kind: reqInfo})
	if err != nil {
		return Info{}, err
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	defer func() { _ = conn.SetDeadline(time.Time{}) }()
	if err := writeFrame(conn, body); err != nil {
		return Info{}, fmt.Errorf("remote: handshake: %w", err)
	}
	respBody, err := readFrame(conn)
	if err != nil {
		return Info{}, fmt.Errorf("remote: handshake: %w", err)
	}
	resp, err := decodeResponse(respBody)
	if err != nil {
		return Info{}, fmt.Errorf("remote: handshake: %w", err)
	}
	if resp.Kind != reqInfo || resp.ID != 0 {
		return Info{}, fmt.Errorf("remote: handshake: unexpected %v reply (id %d): %w",
			resp.Kind, resp.ID, ErrBadFrame)
	}
	if resp.Code != 0 {
		return Info{}, fmt.Errorf("remote: handshake: %w", errorFromCode(reqInfo, resp.Code, resp.Msg))
	}
	return Info{NodeID: int(resp.NodeID), N: int(resp.N), Quorum: int(resp.Quorum),
		Algorithm: core.AlgorithmKind(resp.Algorithm).String(), Epoch: resp.Epoch}, nil
}

// call is one in-flight request; it implements recmem.Future,
// recmem.TagWitness and recmem.EpochWitness. Calls are the client-side
// counterpart of the server's pooled completion path (docs/adr/0010): they
// come from a pool, the done channel is lazy (a pipelined waiter usually
// finds the reply already arrived in a group-committed burst and never
// allocates it), and the pending map keyed by request id is the completion
// token — whoever removes the entry completes the call exactly once.
//
// Recycling discipline: only the synchronous sole-owner paths (do,
// remoteRegister.Read/Write, Info) release a call after its Wait returned —
// the SubmitRead/SubmitWrite paths hand the call to the application as a
// recmem.Future of unbounded lifetime, so those are never recycled and the
// garbage collector takes them. A released call is therefore never aliased,
// and the pool needs no generation counter here.
type call struct {
	cl   *Client
	kind reqKind
	id   uint64

	mu   sync.Mutex
	done bool
	ch   chan struct{} // lazy; non-nil only if a waiter blocked
	// set by complete under mu:
	op   uint64
	val  []byte
	lat  time.Duration
	tg   tag.Tag
	inc  uint64
	info Info
	err  error
}

// callPool recycles calls consumed by the synchronous request paths.
var callPool = sync.Pool{New: func() any { return &call{} }}

// closedCallCh is the pre-closed channel Done returns for completed calls.
var closedCallCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// release recycles a completed call. Only a sole owner (a synchronous path
// whose Wait returned) may call it.
func (c *call) release() {
	c.mu.Lock()
	ok := c.done
	c.mu.Unlock()
	if !ok {
		return // defensive: never recycle a pending call
	}
	*c = call{}
	callPool.Put(c)
}

// Op returns the server-side operation id, 0 until Done.
func (c *call) Op() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.done {
		return 0
	}
	return c.op
}

// TagWitness returns the operation's tag witness once done: the tag the
// node adopted for the written or returned value. ok is false before
// completion and for operations without a witness.
func (c *call) TagWitness() (recmem.Tag, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.done {
		return tag.Tag{}, false
	}
	return c.tg, !c.tg.IsZero()
}

// Incarnation returns the incarnation epoch the node completed the
// operation under (docs/adr/0006), once done. ok is false before completion
// and for failed operations; a successful write or read always carries one.
func (c *call) Incarnation() (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.done {
		return 0, false
	}
	return c.inc, c.err == nil && c.inc != 0
}

// Done returns a channel closed when the response (or a connection error)
// arrived; on a completed call it is a shared pre-closed channel, on a
// pending one the call's lazily-materialized channel.
func (c *call) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return closedCallCh
	}
	if c.ch == nil {
		c.ch = make(chan struct{})
	}
	return c.ch
}

// Wait blocks for the response. Cancelling ctx abandons the operation: the
// call is deregistered — completing with ctx's error for every waiter — so
// a late server reply is discarded instead of leaking the pending-call
// entry for the connection's lifetime. The server may still execute the
// operation; only the client-side wait is released.
func (c *call) Wait(ctx context.Context) ([]byte, error) {
	c.mu.Lock()
	if c.done {
		val, err := c.val, c.err
		c.mu.Unlock()
		return val, err
	}
	if c.ch == nil {
		c.ch = make(chan struct{})
	}
	ch := c.ch
	c.mu.Unlock()
	select {
	case <-ch:
	case <-ctx.Done():
		if c.cl.deregister(c) {
			// We won the race against the reader: no reply will complete
			// this call, so resolve it with the cancellation.
			c.complete(nil, 0, 0, tag.Tag{}, 0, ctx.Err())
		}
		// Either we completed it above, or the reader (a reply or a
		// connection failure) owns the entry and is about to.
		<-ch
	}
	c.mu.Lock()
	val, err := c.val, c.err
	c.mu.Unlock()
	return val, err
}

func (c *call) complete(val []byte, op uint64, lat time.Duration, tg tag.Tag, inc uint64, err error) {
	c.mu.Lock()
	c.val, c.op, c.lat, c.tg, c.inc, c.err = val, op, lat, tg, inc, err
	c.done = true
	ch := c.ch
	c.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// completeInfo is complete for the Info reply, which additionally carries
// the decoded identity.
func (c *call) completeInfo(info Info) {
	c.mu.Lock()
	c.info = info
	c.mu.Unlock()
}

// send registers a call and writes its request frame. The request id is a
// field of the encoded frame (never patched in afterwards), so send
// allocates the id before encoding.
func (c *Client) send(req request) (*call, error) {
	c.mu.Lock()
	if c.sticky != nil {
		err := c.sticky
		c.mu.Unlock()
		return nil, err
	}
	if c.conn == nil {
		c.mu.Unlock()
		// Rejected before anything hit the wire: the operation provably
		// never executed, exactly like an operation invoked on a crashed
		// process.
		return nil, fmt.Errorf("remote: %s: connection down, redialing: %w", c.addr, recmem.ErrDown)
	}
	cl := callPool.Get().(*call)
	cl.cl, cl.kind = c, req.Kind
	cw, gen := c.cw, c.gen
	c.nextID++
	cl.id = c.nextID
	req.ID = cl.id
	c.pending[cl.id] = cl
	c.mu.Unlock()

	// The frame is built in a recycled buffer; cw.write copies it into the
	// coalescer's pending batch before returning, so the buffer goes back to
	// the pool immediately — the steady-state send path allocates nothing
	// beyond the call bookkeeping.
	f := getFrame()
	frame, err := appendRequestFrame(f.b[:0], req)
	if err != nil {
		putFrame(f)
		if c.deregister(cl) {
			*cl = call{} // never escaped; recycle directly
			callPool.Put(cl)
		}
		return nil, err
	}
	f.b = frame
	err = cw.write(frame)
	putFrame(f)
	if err != nil {
		// The frame may have partially reached the server before the write
		// failed: the operation's fate is unknown. connFailed resolves every
		// pending call of this connection — ours included — with
		// recmem.ErrCrashed, so the outcome routes through the future like
		// any other lost-connection operation.
		c.connFailed(gen, fmt.Errorf("remote: write: %w", err))
		return cl, nil
	}
	return cl, nil
}

// readLoop matches response frames to pending calls until the connection
// dies, then hands the generation to the redialer. The frame buffer is
// reused across frames: decodeResponse copies the value and message out, so
// nothing handed to a call aliases it.
func (c *Client) readLoop(conn net.Conn, gen uint64) {
	rbuf := make([]byte, 0, 4096)
	for {
		body, next, err := readFrameReuse(conn, rbuf)
		rbuf = next
		if err != nil {
			c.connFailed(gen, fmt.Errorf("remote: connection: %w", err))
			_ = conn.Close()
			return
		}
		resp, err := decodeResponse(body)
		if err != nil {
			// A protocol-version mismatch is terminal — redialing the same
			// node cannot fix it. Any other malformed frame is treated as a
			// transport failure: drop the connection and redial.
			if errors.Is(err, ErrBadVersion) {
				c.terminate(fmt.Errorf("remote: %w", err))
			} else {
				c.connFailed(gen, fmt.Errorf("remote: %w", err))
			}
			_ = conn.Close()
			return
		}
		c.mu.Lock()
		cl := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if cl == nil {
			continue // response to an abandoned (deregistered) id; ignore
		}
		if resp.Code != 0 {
			cl.complete(nil, 0, 0, tag.Tag{}, 0, errorFromCode(cl.kind, resp.Code, resp.Msg))
			continue
		}
		val := resp.Value
		if resp.Kind == reqRead && !resp.Present {
			val = nil
		}
		if resp.Kind == reqInfo {
			cl.completeInfo(Info{NodeID: int(resp.NodeID), N: int(resp.N), Quorum: int(resp.Quorum),
				Algorithm: core.AlgorithmKind(resp.Algorithm).String(), Epoch: resp.Epoch})
		}
		cl.complete(val, resp.Op, time.Duration(resp.LatencyUS)*time.Microsecond, resp.Tag, resp.Epoch, nil)
	}
}

// deregister removes cl from the pending map if it still owns its entry,
// reporting whether the caller is now responsible for completing it. The
// map entry is the completion token: whoever removes it (a reply in
// readLoop, connFailed's map swap, or a cancelled Wait) completes the call
// exactly once.
func (c *Client) deregister(cl *call) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending[cl.id] != cl {
		return false
	}
	delete(c.pending, cl.id)
	return true
}

// connFailed tears down connection generation gen after a transport error:
// every pending call resolves with recmem.ErrCrashed — an operation cut off
// mid-flight has unknown fate, exactly like one interrupted by the
// process's crash; the recording rules treat it conservatively — and the
// background redialer takes over. Calls for stale generations (a send's
// write error racing the readLoop's failure, or vice versa) are no-ops:
// whoever observed the failure first already handled it.
func (c *Client) connFailed(gen uint64, cause error) {
	c.mu.Lock()
	if c.sticky != nil || c.conn == nil || c.gen != gen {
		c.mu.Unlock()
		return
	}
	conn := c.conn
	c.conn = nil
	pending := c.pending
	c.pending = make(map[uint64]*call)
	c.notifyLocked(StateReconnecting, cause)
	c.mu.Unlock()

	_ = conn.Close()
	err := fmt.Errorf("remote: connection to %s lost: %v (operation fate unknown): %w",
		c.addr, cause, recmem.ErrCrashed)
	for _, cl := range pending {
		cl.complete(nil, 0, 0, tag.Tag{}, 0, err)
	}
	go c.redialLoop()
}

// redialLoop re-establishes the connection with capped exponential backoff.
// Exactly one redialLoop runs at a time: it is spawned by connFailed, which
// fires once per generation, and a new generation only exists once this
// loop installed it.
func (c *Client) redialLoop() {
	if c.opts.RedialAttempts < 0 {
		c.terminate(fmt.Errorf("remote: %s: redialing disabled: %w", c.addr, ErrRedialExhausted))
		return
	}
	backoff := c.opts.RedialMin
	for attempt := 1; ; attempt++ {
		time.Sleep(backoff)
		if backoff *= 2; backoff > c.opts.RedialMax {
			backoff = c.opts.RedialMax
		}
		c.mu.Lock()
		if c.sticky != nil {
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()

		conn, info, err := c.connect()
		if err == nil {
			c.mu.Lock()
			if c.sticky != nil {
				c.mu.Unlock()
				_ = conn.Close()
				return
			}
			if c.haveInfo && (info.NodeID != c.info.NodeID || info.N != c.info.N) {
				was := c.info
				c.mu.Unlock()
				_ = conn.Close()
				c.terminate(fmt.Errorf("remote: %s changed identity across reconnect: was node %d of %d, now node %d of %d",
					c.addr, was.NodeID, was.N, info.NodeID, info.N))
				return
			}
			// An epoch that ADVANCED across the reconnect is the normal
			// crash-recovery story — the recording layer turns it into a
			// recorded crash (docs/adr/0006). An epoch that went BACKWARDS is
			// not a crash of the node but of the abstraction: the peer is
			// replaying a stale incarnation (restored snapshot, cloned state
			// dir), and no history over its replies can be trusted.
			if c.haveInfo && info.Epoch < c.info.Epoch {
				was := c.info
				c.mu.Unlock()
				_ = conn.Close()
				c.terminate(fmt.Errorf("remote: %s replayed a stale incarnation epoch across reconnect: was %d, now %d",
					c.addr, was.Epoch, info.Epoch))
				return
			}
			c.conn, c.cw, c.info, c.haveInfo = conn, newConnWriter(conn), info, true
			c.gen++
			gen := c.gen
			c.notifyLocked(StateConnected, nil)
			c.mu.Unlock()
			go c.readLoop(conn, gen)
			return
		}
		if errors.Is(err, ErrBadVersion) {
			c.terminate(err)
			return
		}
		if c.opts.RedialAttempts > 0 && attempt >= c.opts.RedialAttempts {
			c.terminate(fmt.Errorf("remote: %s unreachable after %d redial attempts: %v: %w",
				c.addr, attempt, err, ErrRedialExhausted))
			return
		}
	}
}

// terminate makes the client permanently unusable: the sticky error answers
// every pending and future call. Reached only through Close, a
// protocol-version mismatch, an identity change across reconnect, or the
// redialer giving up.
func (c *Client) terminate(err error) {
	c.mu.Lock()
	first := c.sticky == nil
	if first {
		c.sticky = err
	}
	sticky := c.sticky
	conn := c.conn
	c.conn = nil
	pending := c.pending
	c.pending = make(map[uint64]*call)
	if first {
		c.notifyLocked(StateTerminal, sticky)
	}
	c.mu.Unlock()

	if conn != nil {
		_ = conn.Close()
	}
	for _, cl := range pending {
		cl.complete(nil, 0, 0, tag.Tag{}, 0, sticky)
	}
}

// Close closes the connection and stops the redialer; pending operations
// fail with ErrClosed. Close is idempotent: once the client is terminated —
// by an earlier Close, a protocol error, the redialer giving up, or the
// read loop having already torn the socket down — it returns nil instead of
// a spurious double-close error.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.terminate(ErrClosed)
	for _, s := range c.stripes {
		if s != nil && s != c {
			_ = s.Close()
		}
	}
	return nil
}

// errorFromCode maps a server error code back to the canonical error.
func errorFromCode(kind reqKind, code errCode, msg string) error {
	switch code {
	case codeCrashed:
		return recmem.ErrCrashed
	case codeDown:
		return recmem.ErrDown
	case codeNotDown:
		return recmem.ErrNotDown
	case codeCannotRecover:
		return recmem.ErrCannotRecover
	case codeNotWriter:
		return recmem.ErrNotWriter
	case codeBadConsistency:
		return recmem.ErrBadConsistency
	case codeDeadline:
		return context.DeadlineExceeded
	default:
		return &Error{Kind: kind.String(), Msg: msg}
	}
}

// Register resolves a handle on the named register; the request template
// (encoded name, consistency validation) is fixed once per handle. With
// Options.Conns > 1 the handle is pinned to one connection by a hash of the
// name, so every operation on a register rides one pipeline and keeps its
// submission order.
func (c *Client) Register(name string) *recmem.Register {
	s := c.stripeFor(name)
	return recmem.NewRegister(name, &remoteRegister{c: s, name: name})
}

// stripeFor maps a register name to its connection (FNV-1a over the name);
// a single-connection client maps everything to itself.
func (c *Client) stripeFor(name string) *Client {
	if len(c.stripes) == 0 {
		return c
	}
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return c.stripes[h%uint32(len(c.stripes))]
}

// do sends a request and waits it out, recycling the call once its Wait
// returned — at that point the call is complete (even an abandoned wait
// resolves it before returning), nothing else references it, and do is its
// sole owner.
func (c *Client) do(ctx context.Context, req request) error {
	cl, err := c.send(req)
	if err != nil {
		return err
	}
	_, err = cl.Wait(ctx)
	cl.release()
	return err
}

// Ping round-trips the connection.
func (c *Client) Ping(ctx context.Context) error {
	return c.do(ctx, request{Kind: reqPing})
}

// Info describes the node behind the connection.
type Info struct {
	// NodeID is the node's process id; N the emulation size; Quorum the
	// majority ⌈(N+1)/2⌉.
	NodeID, N, Quorum int
	// Algorithm is the emulation algorithm the node runs.
	Algorithm string
	// Epoch is the node's incarnation epoch at the time of the handshake:
	// 1 on the node's first-ever boot, strictly higher after every recovery
	// (docs/adr/0006). A regression across a reconnect terminates the
	// client — the peer is replaying a stale incarnation.
	Epoch uint64
}

// Info queries the node's identity and emulation parameters.
func (c *Client) Info(ctx context.Context) (Info, error) {
	cl, err := c.send(request{Kind: reqInfo})
	if err != nil {
		return Info{}, err
	}
	if _, err := cl.Wait(ctx); err != nil {
		cl.release()
		return Info{}, err
	}
	cl.mu.Lock()
	info := cl.info
	cl.mu.Unlock()
	cl.release()
	return info, nil
}

// Crash fails the process behind the node: its volatile state is lost and
// in-flight operations (of every client) return ErrCrashed.
func (c *Client) Crash(ctx context.Context) error {
	return c.do(ctx, request{Kind: reqCrash})
}

// Recover restarts the crashed process, blocking until the algorithm's
// recovery procedure completes (a reachable majority for the persistent
// algorithm).
func (c *Client) Recover(ctx context.Context) error {
	return c.do(ctx, request{Kind: reqRecover, DeadlineUS: deadlineUS(ctx)})
}

// deadlineUS converts a context deadline to the wire's microsecond field.
// Deadlines beyond the field's range (~71 minutes) are clamped to its
// maximum, never to 0 ("no deadline"), so a long client deadline is not
// silently replaced by the server's much shorter default.
func deadlineUS(ctx context.Context) uint32 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	return clampUS(time.Until(d).Microseconds())
}

// clampUS clamps a microsecond count into the wire field: at least 1 (an
// already-expired deadline must still read as "bounded"), at most the
// field's maximum.
func clampUS(us int64) uint32 {
	if us <= 0 {
		return 1
	}
	if us > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(us)
}

// remoteRegister is the recmem.RegisterBackend over one connection.
type remoteRegister struct {
	c    *Client
	name string
}

var _ recmem.RegisterBackend = (*remoteRegister)(nil)

// opDeadlineUS resolves the per-op deadline shipped to the server; like
// deadlineUS, oversized deadlines clamp to the field's maximum. Only the
// zero value means "no deadline": a negative (already-expired) deadline
// ships the minimum representable bound (1µs) — the old `<= 0` guard
// silently converted a dead operation into an unbounded one.
func opDeadlineUS(o recmem.OpOptions) uint32 {
	if o.Deadline == 0 {
		return 0
	}
	return clampUS(o.Deadline.Microseconds())
}

// Read and Write are the synchronous sole-owner paths: the call never
// escapes them (the value slice a read hands back is an owned copy made at
// decode time, independent of the call), so after extracting the outcome
// they release it to the pool — a steady-state synchronous op recycles its
// call object end to end.
func (r *remoteRegister) Read(ctx context.Context, o recmem.OpOptions) ([]byte, recmem.OpID, error) {
	fut, err := r.SubmitRead(o)
	if err != nil {
		return nil, 0, err
	}
	val, err := fut.Wait(ctx)
	setWitness(o, fut, err)
	setEpoch(o, fut, err)
	op := recmem.OpID(fut.Op())
	fut.(*call).release()
	return val, op, err
}

func (r *remoteRegister) Write(ctx context.Context, val []byte, o recmem.OpOptions) (recmem.OpID, error) {
	fut, err := r.SubmitWrite(val, o)
	if err != nil {
		return 0, err
	}
	_, err = fut.Wait(ctx)
	setWitness(o, fut, err)
	setEpoch(o, fut, err)
	op := recmem.OpID(fut.Op())
	fut.(*call).release()
	return op, err
}

// setWitness resolves the WithWitness capture like every backend: the
// operation's tag on success, zero on failure — a failed operation must
// never leave a previous operation's witness in the caller's variable.
func setWitness(o recmem.OpOptions, fut recmem.Future, err error) {
	if o.Witness == nil {
		return
	}
	*o.Witness = tag.Tag{}
	if err == nil {
		*o.Witness, _ = fut.(*call).TagWitness()
	}
}

// setEpoch resolves the WithEpoch capture the same way: the incarnation
// epoch the node served the operation under on success, zero on failure.
func setEpoch(o recmem.OpOptions, fut recmem.Future, err error) {
	if o.Epoch == nil {
		return
	}
	*o.Epoch = 0
	if err == nil {
		*o.Epoch, _ = fut.(*call).Incarnation()
	}
}

func (r *remoteRegister) SubmitRead(o recmem.OpOptions) (recmem.Future, error) {
	// The shared mapping is the wire contract: core.ReadMode numbering is
	// the protocol's consistency byte. Algorithm validation happens at the
	// node.
	mode, err := o.ReadMode()
	if err != nil {
		return nil, err
	}
	return r.c.send(request{Kind: reqRead, Reg: r.name,
		Consistency: uint8(mode), DeadlineUS: opDeadlineUS(o)})
}

func (r *remoteRegister) SubmitWrite(val []byte, o recmem.OpOptions) (recmem.Future, error) {
	return r.c.send(request{Kind: reqWrite, Reg: r.name,
		Value: val, DeadlineUS: opDeadlineUS(o)})
}
