package remote

// Frame-buffer pooling for the remote hot path (docs/adr/0007). The
// steady-state request/reply round trip runs without per-frame allocations:
//
//   - Encoders append into recycled buffers with the 4-byte length prefix
//     reserved up front and patched after the in-place encode, so a frame
//     is built exactly once — no encode-then-copy step.
//   - Read loops reuse one buffer per connection (readFrameReuse); the
//     decoders copy a value out of it exactly once, at the API boundary,
//     which is the ownership rule that makes reuse safe.
//
// Ownership rules: a pooled buffer is owned by exactly one goroutine
// between getFrame and putFrame; a frame read with readFrameReuse is valid
// only until the next call on the same connection; anything a decoder
// returns (request.Value, response.Value, strings) is an owned copy that
// survives the buffer's recycling.

import (
	"encoding/binary"
	"io"
	"sync"
)

// maxPooledFrame caps the capacity a recycled buffer may retain: a rare
// maximal frame reverts to the allocator instead of pinning its memory in
// the pool forever.
const maxPooledFrame = 1 << 18

// frameBuf is one pooled frame buffer.
type frameBuf struct{ b []byte }

// framePool recycles frame buffers across the encode paths of every
// connection (client and server side), in the call-stack-reuse style of a
// sync.Pool'd scratch arena.
var framePool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 4096)} }}

func getFrame() *frameBuf { return framePool.Get().(*frameBuf) }

func putFrame(f *frameBuf) {
	if cap(f.b) > maxPooledFrame {
		return
	}
	f.b = f.b[:0]
	framePool.Put(f)
}

// appendRequestFrame appends r as one length-prefixed frame: the prefix
// slot is reserved first, the body encoded in place behind it, the slot
// patched last. On error buf is returned at its original length.
func appendRequestFrame(buf []byte, r request) ([]byte, error) {
	mark := len(buf)
	out, err := appendRequest(append(buf, 0, 0, 0, 0), r)
	if err != nil {
		return buf[:mark], err
	}
	if len(out)-mark-4 > MaxFrame {
		return buf[:mark], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(out[mark:], uint32(len(out)-mark-4))
	return out, nil
}

// appendResponseFrame is appendRequestFrame for responses.
func appendResponseFrame(buf []byte, r response) ([]byte, error) {
	mark := len(buf)
	out, err := appendResponse(append(buf, 0, 0, 0, 0), r)
	if err != nil {
		return buf[:mark], err
	}
	if len(out)-mark-4 > MaxFrame {
		return buf[:mark], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(out[mark:], uint32(len(out)-mark-4))
	return out, nil
}

// readFrameReuse reads one length-prefixed frame body into buf, growing it
// as needed, and returns the body alongside the (possibly regrown) buffer
// for the next call. The body aliases the buffer: it is valid only until
// the next readFrameReuse on it, the contract the decoders' copy-out rule
// exists for. Errors match readFrame's.
func readFrameReuse(r io.Reader, buf []byte) (body, next []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, buf, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, buf, err
	}
	return buf, buf, nil
}
