package remote

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"recmem"
	"recmem/internal/atomicity"
	"recmem/internal/core"
)

// TestExpiredOpDeadline is the regression for the opDeadlineUS clamp: an
// already-expired per-op deadline must ship the minimum representable bound
// (1µs), never 0 — the wire's "no deadline" — which silently converted a
// dead operation into an unbounded one.
func TestExpiredOpDeadline(t *testing.T) {
	if got := opDeadlineUS(recmem.OpOptions{Deadline: -time.Second}); got != 1 {
		t.Fatalf("opDeadlineUS(expired) = %d, want 1", got)
	}
	if got := opDeadlineUS(recmem.OpOptions{Deadline: -time.Nanosecond}); got != 1 {
		t.Fatalf("opDeadlineUS(-1ns) = %d, want 1", got)
	}

	// End to end: the operation fails with DeadlineExceeded promptly even
	// when the mesh could not serve it at all (majority down), instead of
	// waiting out the server's 30s default.
	mesh := startMesh(t, 3, core.Persistent)
	ctx := testCtx(t)
	c := mesh.dial(t, 0)
	mesh.nodes[1].Crash(nil)
	mesh.nodes[2].Crash(nil)
	start := time.Now()
	err := c.Register("x").Write(ctx, []byte("v"), recmem.WithDeadline(-time.Second))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline write = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("expired deadline took %v", elapsed)
	}
}

// TestVersionSkewRejectedCleanly plays retired-version clients (the
// original v1 and the pre-epoch v2) against the current server: per ADR
// 0003 the server answers each frame with an error response carrying the
// request id — it does not drop the connection — so old clients fail
// op-by-op and the connection stays usable for current-version traffic.
func TestVersionSkewRejectedCleanly(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	for _, old := range []byte{1, 2} {
		conn, err := net.Dial("tcp", mesh.controlAddr(0))
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()

		body, err := encodeRequest(request{Kind: reqPing, ID: 77})
		if err != nil {
			t.Fatal(err)
		}
		body[0] = old // downgrade the version byte to a retired protocol
		if err := writeFrame(conn, body); err != nil {
			t.Fatal(err)
		}
		respBody, err := readFrame(conn)
		if err != nil {
			t.Fatalf("v%d: server dropped the connection instead of answering: %v", old, err)
		}
		resp, err := decodeResponse(respBody)
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != 77 || resp.Code != codeBadRequest {
			t.Fatalf("v%d skew response = %+v, want id 77 code bad-request", old, resp)
		}
		if !strings.Contains(resp.Msg, "version") {
			t.Fatalf("v%d skew message %q does not name the version", old, resp.Msg)
		}

		// The connection still serves current-version requests.
		body, err = encodeRequest(request{Kind: reqPing, ID: 78})
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(conn, body); err != nil {
			t.Fatal(err)
		}
		respBody, err = readFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		resp, err = decodeResponse(respBody)
		if err != nil || resp.ID != 78 || resp.Code != 0 {
			t.Fatalf("v%d post-skew ping = %+v, %v", old, resp, err)
		}
	}
}

// TestRemoteEpochWitness: write and read replies carry the node's
// incarnation epoch over the wire (protocol v3), the handshake Info reports
// it, and it advances across a crash+recover.
func TestRemoteEpochWitness(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	ctx := testCtx(t)
	c := mesh.dial(t, 0)

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch == 0 {
		t.Fatal("handshake Info reports no incarnation epoch")
	}

	var wep, rep uint64
	if err := c.Register("x").Write(ctx, []byte("v"), recmem.WithEpoch(&wep)); err != nil {
		t.Fatal(err)
	}
	if wep != info.Epoch {
		t.Fatalf("write epoch = %d, want the node's %d", wep, info.Epoch)
	}
	if _, err := c.Register("x").Read(ctx, recmem.WithEpoch(&rep)); err != nil {
		t.Fatal(err)
	}
	if rep != wep {
		t.Fatalf("read epoch = %d, want %d", rep, wep)
	}

	if err := c.Crash(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	var after uint64
	if err := c.Register("x").Write(ctx, []byte("v2"), recmem.WithEpoch(&after)); err != nil {
		t.Fatal(err)
	}
	if after <= wep {
		t.Fatalf("post-recovery epoch %d did not advance past %d", after, wep)
	}

	// A failed operation zeroes the capture instead of leaving a stale one.
	err = c.Register("x").Write(ctx, []byte("late"),
		recmem.WithEpoch(&after), recmem.WithDeadline(-time.Second))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired write = %v", err)
	}
	if after != 0 {
		t.Fatalf("failed write left stale epoch %d", after)
	}
}

// slowServer is a protocol endpoint that holds every reply until released —
// the "slow server" for the Wait-cancellation tests.
type slowServer struct {
	ln      net.Listener
	mu      sync.Mutex
	held    []response
	release chan struct{}
}

func startSlowServer(t *testing.T) *slowServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &slowServer{ln: ln, release: make(chan struct{})}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		for {
			body, err := readFrame(conn)
			if err != nil {
				return
			}
			req, err := decodeRequest(body)
			if err != nil {
				return
			}
			if req.Kind == reqInfo {
				// Answer the dial-time version/Info handshake immediately;
				// only operations are held.
				body, err := encodeResponse(response{Kind: reqInfo, ID: req.ID})
				if err == nil {
					_ = writeFrame(conn, body)
				}
				continue
			}
			s.mu.Lock()
			s.held = append(s.held, response{Kind: req.Kind, ID: req.ID})
			s.mu.Unlock()
			go func() {
				<-s.release
				s.mu.Lock()
				defer s.mu.Unlock()
				for _, r := range s.held {
					body, err := encodeResponse(r)
					if err != nil {
						continue
					}
					_ = writeFrame(conn, body)
				}
				s.held = nil
			}()
		}
	}()
	return s
}

// TestWaitCancelDeregisters is the regression for the pending-call leak: a
// Wait abandoned by context cancellation must deregister the call — the
// entry (and its request id) must not linger until a reply that may never
// come — and the late reply, when it does arrive, is discarded without
// disturbing the connection.
func TestWaitCancelDeregisters(t *testing.T) {
	srv := startSlowServer(t)
	c, err := Dial(srv.ln.Addr().String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := c.Ping(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ping against the slow server = %v", err)
	}

	c.mu.Lock()
	n := len(c.pending)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d pending calls linger after cancellation", n)
	}

	// Release the held reply: the client must discard it and keep working.
	close(srv.release)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := c.Ping(ctx2); err != nil {
		t.Fatalf("ping after late reply = %v", err)
	}
}

// TestWaitCancelSettlesAllWaiters: a second waiter (e.g. a Recording
// observer on the future) is released with the cancellation error instead
// of hanging on a call nobody will complete.
func TestWaitCancelSettlesAllWaiters(t *testing.T) {
	srv := startSlowServer(t)
	defer close(srv.release)
	c, err := Dial(srv.ln.Addr().String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fut, err := c.send(request{Kind: reqPing})
	if err != nil {
		t.Fatal(err)
	}
	observed := make(chan error, 1)
	go func() {
		_, err := fut.Wait(context.Background())
		observed <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := fut.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled wait = %v", err)
	}
	select {
	case err := <-observed:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("observer saw %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("observer still hanging after the call was deregistered")
	}
}

// TestRemoteTagWitness: write and read replies carry the adopted tag over
// the wire — the same witness on both sides of the mesh.
func TestRemoteTagWitness(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	ctx := testCtx(t)
	c0, c1 := mesh.dial(t, 0), mesh.dial(t, 1)

	var wwit, rwit recmem.Tag
	if err := c0.Register("x").Write(ctx, []byte("v"), recmem.WithWitness(&wwit)); err != nil {
		t.Fatal(err)
	}
	if wwit.IsZero() {
		t.Fatal("remote write reported no tag witness")
	}
	got, err := c1.Register("x").Read(ctx, recmem.WithWitness(&rwit))
	if err != nil || string(got) != "v" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if rwit != wwit {
		t.Fatalf("read witness %v, want the write's %v", rwit, wwit)
	}

	// Async futures report the witness too.
	f, err := c0.Register("x").SubmitWrite([]byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// A read of ⊥ has no witness.
	var none recmem.Tag
	if _, err := c1.Register("untouched").Read(ctx, recmem.WithWitness(&none)); err != nil {
		t.Fatal(err)
	}
	if !none.IsZero() {
		t.Fatalf("⊥ read reported witness %v", none)
	}
}

// TestRecordedRemoteMeshVerifies drives a crash/recovery workload against a
// live (honest) mesh through Recording wrappers and verifies the merged
// history — the tentpole flow of docs/adr/0004, in miniature.
func TestRecordedRemoteMeshVerifies(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	ctx := testCtx(t)
	g := recmem.NewRecordingGroup()
	clients := make([]recmem.Client, 3)
	for i := range clients {
		clients[i] = g.Wrap(mesh.dial(t, i))
	}

	for round := 0; round < 3; round++ {
		for i, c := range clients {
			val := []byte{byte('a' + round), byte('0' + i)}
			if err := c.Register("x").Write(ctx, val); err != nil {
				t.Fatal(err)
			}
			if _, err := clients[(i+1)%3].Register("x").Read(ctx); err != nil {
				t.Fatal(err)
			}
		}
		if err := clients[2].Crash(ctx); err != nil {
			t.Fatal(err)
		}
		// Operations against the downed node are recorded conservatively.
		if _, err := clients[2].Register("x").Read(ctx); !errors.Is(err, recmem.ErrDown) {
			t.Fatalf("read on downed node = %v", err)
		}
		if err := clients[0].Register("x").Write(ctx, []byte("while-down")); err != nil {
			t.Fatal(err)
		}
		if err := clients[2].Recover(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Verify(recmem.PersistentAtomicity); err != nil {
		t.Fatalf("honest mesh failed verification: %v", err)
	}
}

// TestStaleServerFailsVerification is the acceptance property: a mesh in
// which one node serves stale reads (frozen value + stale tag witness) must
// fail the merged-history check, while the same workload against honest
// nodes passes. The emulation beneath the lying control port is untouched —
// only the verification pipeline can tell the difference.
func TestStaleServerFailsVerification(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	// Re-serve node 1's control port through a dishonest server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stale := Serve(ln, mesh.nodes[1], ServerOptions{OpTimeout: 30 * time.Second, StaleReads: true})
	t.Cleanup(func() { stale.Close() })

	ctx := testCtx(t)
	g := recmem.NewRecordingGroup()
	c0 := g.Wrap(mesh.dial(t, 0))
	cStale, err := Dial(stale.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cStale.Close() })
	c1 := g.Wrap(cStale)
	c2 := g.Wrap(mesh.dial(t, 2))

	// Pin the stale node's view, then move the register past it.
	if err := c0.Register("x").Write(ctx, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, err := c1.Register("x").Read(ctx); err != nil || string(v) != "v1" {
		t.Fatalf("pin read = %q, %v", v, err)
	}
	if err := c0.Register("x").Write(ctx, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, err := c2.Register("x").Read(ctx); err != nil || string(v) != "v2" {
		t.Fatalf("honest read = %q, %v", v, err)
	}
	// The stale node still serves v1 — a completed read of a superseded
	// value, well after W(v2) completed.
	if v, err := c1.Register("x").Read(ctx); err != nil || string(v) != "v1" {
		t.Fatalf("stale read = %q, %v (stale server should freeze v1)", v, err)
	}

	err = g.Verify(recmem.PersistentAtomicity)
	if err == nil {
		t.Fatal("verification passed against a stale-serving node")
	}
	var v *atomicity.Violation
	if !errors.As(err, &v) {
		t.Fatalf("verification error = %v, want an atomicity violation", err)
	}
}

// TestFrozenEpochFailsVerification is the negative control for the epoch
// inference (docs/adr/0006): a node whose control server freezes its
// reported incarnation epoch (ServerOptions.FreezeEpoch) — hiding a real
// crash+recover from the recorders — must fail the merged-history
// verification with an epoch violation, while the same workload against an
// honest server passes (TestRecordedRemoteMeshVerifies).
func TestFrozenEpochFailsVerification(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	// Re-serve node 1's control port through a dishonest server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	frozen := Serve(ln, mesh.nodes[1], ServerOptions{OpTimeout: 30 * time.Second, FreezeEpoch: true})
	t.Cleanup(func() { frozen.Close() })

	ctx := testCtx(t)
	g := recmem.NewRecordingGroup()
	c0 := g.Wrap(mesh.dial(t, 0))
	cFrozen, err := Dial(frozen.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cFrozen.Close() })
	c1 := g.Wrap(cFrozen)

	if err := c0.Register("x").Write(ctx, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Register("x").Read(ctx); err != nil {
		t.Fatal(err)
	}
	// A REAL crash+recover on node 1: its incarnation epoch advances, but
	// the frozen server keeps reporting the old one.
	if err := c1.Crash(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c1.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Register("x").Read(ctx); err != nil {
		t.Fatal(err)
	}

	err = g.Verify(recmem.PersistentAtomicity)
	if err == nil {
		t.Fatal("verification passed against a frozen-epoch node")
	}
	if !strings.Contains(err.Error(), "epoch violation") {
		t.Fatalf("verification error = %v, want an epoch violation", err)
	}
}

// TestFailedOpZeroesWitness: a failed operation must leave the WithWitness
// capture zero, not the previous operation's tag — the simulator backend
// already guarantees this; the remote backend must match (regression).
func TestFailedOpZeroesWitness(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	ctx := testCtx(t)
	c := mesh.dial(t, 0)

	var wit recmem.Tag
	if err := c.Register("x").Write(ctx, []byte("v"), recmem.WithWitness(&wit)); err != nil {
		t.Fatal(err)
	}
	if wit.IsZero() {
		t.Fatal("successful write reported no witness")
	}
	// Reuse the same capture variable on an operation that must fail.
	err := c.Register("x").Write(ctx, []byte("late"),
		recmem.WithWitness(&wit), recmem.WithDeadline(-time.Second))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired write = %v", err)
	}
	if !wit.IsZero() {
		t.Fatalf("failed write left stale witness %v", wit)
	}
}

// TestStalledClientDoesNotWedgeServer: a client that pipelines requests but
// never reads responses wedges the connection's writer (full response
// channel, blocked socket write). When the connection then dies, the read
// loop — blocked in reply() — must be released too, or the connection
// goroutines leak and Server.Close hangs forever (regression: reply did not
// select on the writer's exit).
func TestStalledClientDoesNotWedgeServer(t *testing.T) {
	mesh := startMesh(t, 1, core.CrashStop)
	srv := mesh.servers[0]
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	// Flood pings without ever reading a response until the server stops
	// reading (its reply path is wedged) and our writes block.
	body, err := encodeRequest(request{Kind: reqPing, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < 1_000_000; i++ {
		if err := writeFrame(conn, body); err != nil {
			break // write deadline: both directions are full, server is wedged
		}
	}
	_ = conn.Close()

	done := make(chan struct{})
	go func() {
		_ = srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close hung on a wedged connection")
	}
}
