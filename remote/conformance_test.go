package remote

// The conformance suite: one set of behavioral tests, run verbatim against
// both recmem.Client implementations — the in-process simulated cluster
// (recmem.Process) and this package's TCP client against a live 3-node
// mesh. The suite is what makes "same code everywhere" checkable: a
// divergence between the backends is a test failure here, not a surprise in
// an application.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"recmem"
	"recmem/internal/core"
)

// backendCase builds three clients (one per process of a 3-process
// emulation) for the named algorithm.
type backendCase struct {
	name string
	make func(t *testing.T, algo recmem.Algorithm) []recmem.Client
}

func algoKind(algo recmem.Algorithm) core.AlgorithmKind {
	switch algo {
	case recmem.RegularRegister:
		return core.RegularSW
	case recmem.TransientAtomic:
		return core.Transient
	default:
		return core.Persistent
	}
}

var backends = []backendCase{
	{
		name: "sim",
		make: func(t *testing.T, algo recmem.Algorithm) []recmem.Client {
			t.Helper()
			c, err := recmem.New(3, algo, recmem.WithRetransmitEvery(10*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(c.Close)
			return []recmem.Client{c.Process(0), c.Process(1), c.Process(2)}
		},
	},
	{
		name: "remote",
		make: func(t *testing.T, algo recmem.Algorithm) []recmem.Client {
			t.Helper()
			mesh := startMesh(t, 3, algoKind(algo))
			return []recmem.Client{mesh.dial(t, 0), mesh.dial(t, 1), mesh.dial(t, 2)}
		},
	},
	{
		// The TCP client again, with registers striped across three
		// connections per client (Options.Conns): the fan-out must be
		// behaviorally invisible — same conformance surface, one pipeline per
		// register.
		name: "remote-striped",
		make: func(t *testing.T, algo recmem.Algorithm) []recmem.Client {
			t.Helper()
			mesh := startMesh(t, 3, algoKind(algo))
			clients := make([]recmem.Client, 3)
			for i := range clients {
				c, err := Dial(mesh.controlAddr(i), Options{Conns: 3})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { c.Close() })
				clients[i] = c
			}
			return clients
		},
	},
}

// TestConformance runs every behavioral check against every backend.
func TestConformance(t *testing.T) {
	checks := []struct {
		name string
		algo recmem.Algorithm
		run  func(t *testing.T, clients []recmem.Client)
	}{
		{"WriteThenReadElsewhere", recmem.PersistentAtomic, confWriteRead},
		{"InitialValueIsNil", recmem.PersistentAtomic, confInitialNil},
		{"PipelinedSubmits", recmem.PersistentAtomic, confPipelined},
		{"CrashRecover", recmem.PersistentAtomic, confCrashRecover},
		{"DownErrors", recmem.PersistentAtomic, confDownErrors},
		{"RegularWriterOnly", recmem.RegularRegister, confRegularWriter},
		{"SafeReadSelection", recmem.RegularRegister, confSafeRead},
		{"ConsistencyRejected", recmem.PersistentAtomic, confConsistencyRejected},
		{"CloseReleasesHandle", recmem.PersistentAtomic, confClose},
	}
	for _, b := range backends {
		for _, check := range checks {
			t.Run(b.name+"/"+check.name, func(t *testing.T) {
				check.run(t, b.make(t, check.algo))
			})
		}
	}
}

func confWriteRead(t *testing.T, clients []recmem.Client) {
	ctx := testCtx(t)
	if err := clients[0].Register("x").Write(ctx, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for i, c := range clients {
		got, err := c.Register("x").Read(ctx)
		if err != nil || string(got) != "v1" {
			t.Fatalf("client %d read = %q, %v", i, got, err)
		}
	}
}

func confInitialNil(t *testing.T, clients []recmem.Client) {
	ctx := testCtx(t)
	got, err := clients[1].Register("never-written").Read(ctx)
	if err != nil || got != nil {
		t.Fatalf("initial read = %v, %v (want nil)", got, err)
	}
}

func confPipelined(t *testing.T, clients []recmem.Client) {
	ctx := testCtx(t)
	regs := []*recmem.Register{
		clients[0].Register("a"), clients[0].Register("b"), clients[0].Register("c"),
	}
	const ops = 120
	var writes []*recmem.WriteFuture
	for i := 0; i < ops; i++ {
		f, err := regs[i%len(regs)].SubmitWrite([]byte(fmt.Sprintf("w%03d", i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		writes = append(writes, f)
	}
	for i, f := range writes {
		if err := f.Wait(ctx); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	var reads []*recmem.ReadFuture
	for i := 0; i < ops; i++ {
		f, err := regs[i%len(regs)].SubmitRead()
		if err != nil {
			t.Fatal(err)
		}
		reads = append(reads, f)
	}
	for i, f := range reads {
		val, err := f.Wait(ctx)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if len(val) == 0 {
			t.Fatalf("read %d returned ⊥ after %d writes", i, ops)
		}
	}
}

func confCrashRecover(t *testing.T, clients []recmem.Client) {
	ctx := testCtx(t)
	if err := clients[0].Register("x").Write(ctx, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := clients[0].Crash(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clients[0].Crash(ctx); !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("double crash: %v", err)
	}
	// The remaining majority keeps serving.
	got, err := clients[1].Register("x").Read(ctx)
	if err != nil || string(got) != "durable" {
		t.Fatalf("read with one node down = %q, %v", got, err)
	}
	if err := clients[0].Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clients[0].Recover(ctx); !errors.Is(err, recmem.ErrNotDown) {
		t.Fatalf("recover of an up process: %v", err)
	}
	got, err = clients[0].Register("x").Read(ctx)
	if err != nil || string(got) != "durable" {
		t.Fatalf("read after recovery = %q, %v", got, err)
	}
}

func confDownErrors(t *testing.T, clients []recmem.Client) {
	ctx := testCtx(t)
	if err := clients[2].Crash(ctx); err != nil {
		t.Fatal(err)
	}
	reg := clients[2].Register("x")
	if err := reg.Write(ctx, []byte("v")); !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("write while down: %v", err)
	}
	if _, err := reg.Read(ctx); !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("read while down: %v", err)
	}
	// Admission errors may surface at submission (the simulator knows its
	// process state locally) or at the future (a remote client learns it
	// from the response) — the contract is only that they surface.
	if f, err := reg.SubmitWrite([]byte("v")); err == nil {
		err = f.Wait(ctx)
		if !errors.Is(err, recmem.ErrDown) {
			t.Fatalf("submit while down resolved to: %v", err)
		}
	} else if !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("submit while down: %v", err)
	}
	if err := clients[2].Recover(ctx); err != nil {
		t.Fatal(err)
	}
}

func confRegularWriter(t *testing.T, clients []recmem.Client) {
	ctx := testCtx(t)
	if err := clients[1].Register("x").Write(ctx, []byte("v")); !errors.Is(err, recmem.ErrNotWriter) {
		t.Fatalf("non-writer write: %v", err)
	}
	if err := clients[0].Register("x").Write(ctx, []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func confSafeRead(t *testing.T, clients []recmem.Client) {
	ctx := testCtx(t)
	if err := clients[0].Register("x").Write(ctx, []byte("v7")); err != nil {
		t.Fatal(err)
	}
	got, err := clients[2].Register("x").Read(ctx, recmem.WithConsistency(recmem.Safety))
	if err != nil || string(got) != "v7" {
		t.Fatalf("safe read = %q, %v", got, err)
	}
	got, err = clients[1].Register("x").Read(ctx, recmem.WithConsistency(recmem.Regularity))
	if err != nil || string(got) != "v7" {
		t.Fatalf("regular read = %q, %v", got, err)
	}
}

func confConsistencyRejected(t *testing.T, clients []recmem.Client) {
	ctx := testCtx(t)
	if _, err := clients[0].Register("x").Read(ctx, recmem.WithConsistency(recmem.Safety)); !errors.Is(err, recmem.ErrBadConsistency) {
		t.Fatalf("safe read under an atomic algorithm: %v", err)
	}
	if err := clients[0].Register("x").Write(ctx, []byte("v"), recmem.WithConsistency(recmem.Safety)); err == nil {
		t.Fatal("consistency selection on a write accepted")
	}
}

func confClose(t *testing.T, clients []recmem.Client) {
	ctx := testCtx(t)
	if err := clients[1].Register("x").Write(ctx, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := clients[1].Close(); err != nil {
		t.Fatal(err)
	}
	// Closing one client never takes the emulation down: the others work.
	got, err := clients[0].Register("x").Read(ctx)
	if err != nil || string(got) != "v" {
		t.Fatalf("read after peer close = %q, %v", got, err)
	}
}
