package recmem

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"recmem/internal/atomicity"
	"recmem/internal/history"
	"recmem/internal/wire"
)

// This file implements live-mesh history verification (docs/adr/0004): a
// Recording wrapper turns any Client — a simulated Process or a remote.Dial
// connection — into a client that records the history it observes, and a
// RecordingGroup merges the per-client histories onto one timeline (ordered
// by wall clock where unambiguous, by the protocol's tag witnesses where
// not) and feeds the same atomicity checkers the simulator uses. Remote
// runs, which have no global observer, become verifiable: this closes the
// PR-3 gap where a live mesh was exercised but never checked.

// RecordingVirtualBase is the first process id RecordingGroup hands to
// one-shot virtual clients (asynchronous submissions, operations of unknown
// fate). Real recorded processes always sit below it, so the regular/safe
// checkers can attribute virtual writes with CheckRegularSWFrom semantics.
const RecordingVirtualBase = 1 << 20

// RecordingGroup coordinates the Recording wrappers of one run: it assigns
// each wrapped client a process id, shares the virtual-client id allocator,
// and merges the recorded histories for verification.
type RecordingGroup struct {
	mu      sync.Mutex
	wrapped map[Client]*Recording
	order   []*Recording
	virt    atomic.Int32
	// seed is the synthetic prior-state history a Continuation group starts
	// from: per-register anchor writes carrying the predecessor round's
	// committed state, plus its still-pending write invocations. Prepended
	// to Histories so the checkers verify this round's reads against the
	// previous round's writers.
	seed history.History
}

// NewRecordingGroup returns an empty group.
func NewRecordingGroup() *RecordingGroup {
	g := &RecordingGroup{wrapped: make(map[Client]*Recording)}
	g.virt.Store(RecordingVirtualBase)
	return g
}

// Wrap returns a recording client over c, attributed to the next process id
// (0, 1, ... in wrap order — match it to the mesh's node order). Wrapping
// the same client again returns the existing wrapper, so a workload driver
// and a fault injector that both wrap the run's clients share one recording
// per client; wrapping a Recording of this group returns it unchanged.
func (g *RecordingGroup) Wrap(c Client) *Recording {
	g.mu.Lock()
	defer g.mu.Unlock()
	if r, ok := c.(*Recording); ok && r.g == g {
		return r
	}
	if r, ok := g.wrapped[c]; ok {
		return r
	}
	proc := int32(len(g.order))
	if proc >= RecordingVirtualBase {
		panic("recmem: too many recorded clients")
	}
	r := &Recording{
		inner: c,
		g:     g,
		rec:   history.NewClientRecorder(proc, func() int32 { return g.virt.Add(1) - 1 }),
	}
	g.wrapped[c] = r
	g.order = append(g.order, r)
	return r
}

// Histories snapshots the per-client histories recorded so far, in wrap
// order, each on its own local timeline (ready for history.Merge).
func (g *RecordingGroup) Histories() []history.History {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]history.History, 0, len(g.order)+1)
	if len(g.seed) > 0 {
		out = append(out, g.seed.Clone())
	}
	for _, r := range g.order {
		out = append(out, r.History())
	}
	return out
}

// Merged merges the recorded per-client histories onto one global timeline:
// cross-client order comes from the wall-clock stamps where they are
// unambiguous and from the tag witnesses where they are not, and the tag
// witnesses are audited for consistency (one tag binding two values fails
// the merge). See history.Merge for the exact ordering rules.
//
// Before merging, each recorder's incarnation-epoch tracking is audited: a
// node that regressed its epoch or failed to mint past a recorded crash
// (docs/adr/0006) fails the merge outright — no checker search needed for
// that class of dishonesty.
func (g *RecordingGroup) Merged() (history.History, error) {
	g.mu.Lock()
	recs := append([]*Recording(nil), g.order...)
	g.mu.Unlock()
	for _, r := range recs {
		if err := r.rec.EpochViolation(); err != nil {
			return nil, err
		}
	}
	return history.Merge(g.Histories())
}

// Verify merges the recorded histories and checks them against the given
// criterion — the live-mesh counterpart of Cluster.Verify. A nil return
// means the run upheld the criterion; otherwise the error describes the
// violation (or a merge inconsistency). To inspect the merged history AND
// check it without merging twice, call Merged and then VerifyHistory.
func (g *RecordingGroup) Verify(cr Criterion) error {
	merged, err := g.Merged()
	if err != nil {
		return err
	}
	return VerifyHistory(merged, cr)
}

// Continuation returns a fresh RecordingGroup that verifies the NEXT round
// of a multi-round run against this group's outcome, so round-spanning
// torture does not verify each round against an amnesiac blank slate:
//
//   - Every register's committed state is carried as an anchor: the highest
//     tag-witnessed completed operation per register becomes a synthetic
//     already-completed write (on a one-shot virtual client, stamped at
//     continuation time) in the new group's seed history. The anchor is
//     sound because witnesses are only attached to completed operations —
//     the value was committed at a majority before the hand-off.
//   - Still-pending write invocations are carried as pending invocations
//     (original stamps), so a value that commits late — surfacing only in
//     the next round's reads — has its writer on record.
//   - Each wrapped client gets a fresh recorder seeded (SeedFrom) with its
//     predecessor's incarnation-epoch knowledge and down state, so node
//     restarts between rounds are still inferred and stale-epoch replays
//     across the boundary still fail.
//
// Wrap on the new group returns the pre-seeded wrappers for the same inner
// clients; the old group stays usable for inspecting its own round.
func (g *RecordingGroup) Continuation() *RecordingGroup {
	g.mu.Lock()
	order := append([]*Recording(nil), g.order...)
	seed := g.seed
	g.mu.Unlock()

	hs := make([]history.History, 0, len(order)+1)
	if len(seed) > 0 {
		hs = append(hs, seed)
	}
	for _, r := range order {
		hs = append(hs, r.History())
	}

	ng := NewRecordingGroup()

	// Per register: the highest-tag completed (witnessed) operation — its
	// value is the committed state to anchor — and every write invocation
	// with no matching reply, which must stay on record as pending.
	type anchor struct {
		t   Tag
		val string
	}
	anchors := make(map[string]anchor)
	var carried []history.Event
	for _, h := range hs {
		writeVal := make(map[uint64]string)
		returned := make(map[uint64]bool)
		for _, e := range h {
			if e.Kind == history.Invoke && e.Op == history.Write {
				writeVal[e.OpID] = e.Value
			}
			if e.Kind == history.Return {
				returned[e.OpID] = true
			}
		}
		for _, e := range h {
			switch {
			case e.Kind == history.Return && !e.Tag.IsZero():
				v := e.Value
				if e.Op == history.Write {
					v = writeVal[e.OpID]
				}
				if a, ok := anchors[e.Reg]; !ok || a.t.Less(e.Tag) {
					anchors[e.Reg] = anchor{t: e.Tag, val: v}
				}
			case e.Kind == history.Invoke && e.Op == history.Write && !returned[e.OpID]:
				carried = append(carried, e)
			}
		}
	}

	sort.Slice(carried, func(i, j int) bool { return carried[i].At < carried[j].At })
	regs := make([]string, 0, len(anchors))
	for reg := range anchors {
		regs = append(regs, reg)
	}
	sort.Strings(regs)

	now := time.Now().UnixNano()
	var (
		ns   history.History
		opid uint64
	)
	for _, e := range carried {
		opid++
		ns = append(ns, history.Event{Proc: ng.virt.Add(1) - 1, Kind: history.Invoke,
			Op: history.Write, OpID: opid, Reg: e.Reg, Value: e.Value, At: e.At})
	}
	for _, reg := range regs {
		a := anchors[reg]
		opid++
		proc := ng.virt.Add(1) - 1
		ns = append(ns,
			history.Event{Proc: proc, Kind: history.Invoke, Op: history.Write,
				OpID: opid, Reg: reg, Value: a.val, At: now},
			history.Event{Proc: proc, Kind: history.Return, Op: history.Write,
				OpID: opid, Reg: reg, Tag: a.t, At: now})
	}
	for i := range ns {
		ns[i].Seq = int64(i + 1)
	}
	ng.seed = ns

	for _, old := range order {
		proc := int32(len(ng.order))
		nr := &Recording{
			inner: old.inner,
			g:     ng,
			rec:   history.NewClientRecorder(proc, func() int32 { return ng.virt.Add(1) - 1 }),
		}
		nr.rec.SeedFrom(old.rec)
		ng.wrapped[old.inner] = nr
		ng.order = append(ng.order, nr)
	}
	return ng
}

// VerifyHistory checks an already-merged history (from
// RecordingGroup.Merged) against the given criterion, attributing virtual
// clients (process ids >= RecordingVirtualBase) per the recording rules.
func VerifyHistory(merged history.History, cr Criterion) error {
	switch cr {
	case Regularity:
		return atomicity.CheckRegularSWFrom(merged, RecordingVirtualBase)
	case Safety:
		return atomicity.CheckSafeSWFrom(merged, RecordingVirtualBase)
	}
	m := cr.mode()
	if m == 0 {
		return fmt.Errorf("recmem: unknown criterion %d", int(cr))
	}
	return atomicity.Check(merged, m)
}

// Recording is a Client that records every operation, crash and recovery it
// observes into a per-client history (internal/history.ClientRecorder),
// stamping events on the local wall clock and attaching the tag witnesses
// the backend reports. It is driver-transparent: operations pass through to
// the wrapped client unchanged.
//
// A Recording observes only its own client's traffic — wrap every client of
// the run (through one RecordingGroup) and drive all operations and fault
// injection through the wrappers, or the merged history will be missing
// events. Outcomes a client cannot know stay conservative: an operation
// that fails with an unknown fate (crash, timeout, transport error) is
// recorded as pending forever on a one-shot virtual client, which the
// checkers may drop — never as completed.
type Recording struct {
	inner Client
	g     *RecordingGroup
	rec   *history.ClientRecorder

	mu   sync.Mutex
	regs map[string]*Register
}

var _ Client = (*Recording)(nil)

// Proc returns the process id the recording attributes sequential
// operations to.
func (r *Recording) Proc() int32 { return r.rec.Proc() }

// Unwrap returns the wrapped client.
func (r *Recording) Unwrap() Client { return r.inner }

// History snapshots this client's recorded history on its local timeline.
func (r *Recording) History() history.History { return r.rec.History() }

// Register resolves a recording handle on the named register; the wrapped
// client's handle resolution is cached exactly once, like any backend.
func (r *Recording) Register(name string) *Register {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.regs == nil {
		r.regs = make(map[string]*Register)
	}
	reg := r.regs[name]
	if reg == nil {
		inner := r.inner.Register(name)
		reg = NewRegister(name, &recordingBackend{r: r, name: name, b: inner.b})
		r.regs[name] = reg
	}
	return reg
}

// Crash injects a crash through the wrapped client and records the crash
// event once the injection is acknowledged.
func (r *Recording) Crash(ctx context.Context) error {
	err := r.inner.Crash(ctx)
	if err == nil {
		r.rec.Crash()
	}
	return err
}

// Recover recovers through the wrapped client and records the recovery
// event once acknowledged. ErrNotDown also records a recovery when a crash
// is on record: the process is confirmed up, so it must have recovered
// outside this client's view — a real process restart (SIGKILL + re-exec)
// runs the recovery procedure at boot, and the injector's Recover then
// finds the node already serving. Recording the recovery at the
// confirmation point is conservative: operations between the actual boot
// recovery and this event were attributed to one-shot virtual clients.
func (r *Recording) Recover(ctx context.Context) error {
	err := r.inner.Recover(ctx)
	if err == nil || errors.Is(err, ErrNotDown) {
		r.rec.Recover() // no-op when no crash is recorded
	}
	return err
}

// Close closes the wrapped client. The recorded history stays available.
func (r *Recording) Close() error { return r.inner.Close() }

// recordingBackend wraps a register backend with history recording.
type recordingBackend struct {
	r    *Recording
	name string
	b    RegisterBackend
}

var _ RegisterBackend = (*recordingBackend)(nil)

func (b *recordingBackend) Read(ctx context.Context, o OpOptions) ([]byte, OpID, error) {
	id := b.r.rec.Invoke(history.Read, b.name, "", false)
	var (
		wit Tag
		ep  uint64
	)
	callerWit, callerEp := o.Witness, o.Epoch
	o.Witness, o.Epoch = &wit, &ep
	val, op, err := b.b.Read(ctx, o)
	if callerWit != nil {
		*callerWit = wit
	}
	if callerEp != nil {
		*callerEp = ep
	}
	if err == nil {
		b.r.rec.Return(id, string(val), wit, ep)
	} else {
		// A failed read has no effect to verify: erase the invocation.
		b.r.rec.Abort(id, history.AbortRejected)
	}
	return val, op, err
}

func (b *recordingBackend) Write(ctx context.Context, val []byte, o OpOptions) (OpID, error) {
	id := b.r.rec.Invoke(history.Write, b.name, string(val), false)
	var (
		wit Tag
		ep  uint64
	)
	callerWit, callerEp := o.Witness, o.Epoch
	o.Witness, o.Epoch = &wit, &ep
	op, err := b.b.Write(ctx, val, o)
	if callerWit != nil {
		*callerWit = wit
	}
	if callerEp != nil {
		*callerEp = ep
	}
	if err == nil {
		b.r.rec.Return(id, "", wit, ep)
	} else {
		b.r.rec.Abort(id, writeAbortFate(err))
	}
	return op, err
}

func (b *recordingBackend) SubmitRead(o OpOptions) (Future, error) {
	id := b.r.rec.Invoke(history.Read, b.name, "", true)
	fut, err := b.b.SubmitRead(o)
	if err != nil {
		b.r.rec.Abort(id, history.AbortRejected)
		return nil, err
	}
	go b.observe(id, history.Read, fut)
	return fut, nil
}

func (b *recordingBackend) SubmitWrite(val []byte, o OpOptions) (Future, error) {
	id := b.r.rec.Invoke(history.Write, b.name, string(val), true)
	fut, err := b.b.SubmitWrite(val, o)
	if err != nil {
		b.r.rec.Abort(id, history.AbortRejected)
		return nil, err
	}
	go b.observe(id, history.Write, fut)
	return fut, nil
}

// observe records a submitted operation's outcome when its future resolves.
// Recording rides on the future's completion, not on the caller's Wait, so
// abandoned futures are still recorded faithfully.
func (b *recordingBackend) observe(id uint64, typ history.OpType, fut Future) {
	val, err := fut.Wait(context.Background())
	switch {
	case err == nil:
		var wit Tag
		if tw, ok := fut.(TagWitness); ok {
			wit, _ = tw.TagWitness()
		}
		var ep uint64
		if ew, ok := fut.(EpochWitness); ok {
			ep, _ = ew.Incarnation()
		}
		ret := ""
		if typ == history.Read {
			ret = string(val)
		}
		b.r.rec.Return(id, ret, wit, ep)
	case typ == history.Read:
		b.r.rec.Abort(id, history.AbortRejected)
	default:
		b.r.rec.Abort(id, writeAbortFate(err))
	}
}

// writeAbortFate classifies a failed write: admission rejections provably
// never executed and are erased; anything else (crash, timeout, transport
// failure, unknown server errors) may have taken effect and stays pending.
func writeAbortFate(err error) history.AbortFate {
	switch {
	case errors.Is(err, ErrDown),
		errors.Is(err, ErrNotWriter),
		errors.Is(err, ErrBadConsistency),
		errors.Is(err, wire.ErrValueTooLarge):
		return history.AbortRejected
	default:
		return history.AbortUnknown
	}
}
